"""Tests for the resource monitor and the simulated cluster engine."""

from __future__ import annotations

import pytest

from repro.dsps.allocation import Allocation, PlacementDelta
from repro.dsps.engine import ClusterEngine
from repro.dsps.resource_monitor import ResourceMonitor
from repro.exceptions import AllocationError
from tests.conftest import make_catalog, query_over


@pytest.fixture
def deployed():
    """Catalog + engine with one manually deployed 2-way join."""
    catalog = make_catalog(num_hosts=3, num_base=3)
    query = catalog.register_query(query_over("b0", "b1"))
    operator = catalog.producers_of(query.result_stream)[0]
    engine = ClusterEngine(catalog)
    delta = PlacementDelta(
        add_available={(1, 1), (0, 0), (0, 1), (0, query.result_stream)},
        add_flows={(1, 0, 1)},
        add_placements={(0, operator.operator_id)},
        set_provided={query.result_stream: 0},
        admit_queries={query.query_id},
    )
    engine.deploy(delta)
    return catalog, query, operator, engine


class TestResourceMonitor:
    def test_default_drift_is_identity(self, deployed):
        catalog, query, operator, engine = deployed
        monitor = ResourceMonitor(catalog)
        assert monitor.drift_of(operator.operator_id) == 1.0
        assert monitor.observed_operator_cost(operator.operator_id) == pytest.approx(
            operator.cpu_cost
        )

    def test_explicit_drift(self, deployed):
        catalog, query, operator, engine = deployed
        monitor = ResourceMonitor(catalog)
        monitor.set_operator_drift(operator.operator_id, 1.5)
        assert monitor.observed_operator_cost(operator.operator_id) == pytest.approx(
            1.5 * operator.cpu_cost
        )
        assert monitor.drifted_operators(threshold=0.1) == [operator.operator_id]
        assert monitor.drifted_operators(threshold=0.9) == []

    def test_randomised_drift_within_spread(self, deployed):
        catalog, _, _, _ = deployed
        monitor = ResourceMonitor(catalog, random_state=1)
        monitor.randomise_drift(spread=0.2)
        for operator in catalog.operators:
            assert 0.8 <= monitor.drift_of(operator.operator_id) <= 1.2

    def test_sampling_matches_allocation(self, deployed):
        catalog, query, operator, engine = deployed
        monitor = ResourceMonitor(catalog)
        sample = monitor.sample_host(engine.allocation, 0)
        assert sample.cpu_used == pytest.approx(operator.cpu_cost)
        assert sample.network_usage == pytest.approx(
            engine.allocation.network_usage(0)
        )
        assert 0.0 < sample.cpu_utilisation < 1.0

    def test_overloaded_hosts_with_drift(self, deployed):
        catalog, query, operator, engine = deployed
        monitor = ResourceMonitor(catalog)
        assert monitor.overloaded_hosts(engine.allocation) == []
        monitor.set_operator_drift(operator.operator_id, 100.0)
        assert monitor.overloaded_hosts(engine.allocation) == [0]


class TestClusterEngine:
    def test_deploy_updates_allocation(self, deployed):
        catalog, query, operator, engine = deployed
        assert engine.allocation.has_placement(0, operator.operator_id)
        assert engine.num_deployments == 1

    def test_strict_engine_rejects_infeasible_delta(self, deployed):
        catalog, query, operator, engine = deployed
        bad = PlacementDelta(add_available={(2, query.result_stream)})  # no source
        with pytest.raises(AllocationError):
            engine.deploy(bad)
        # The failed deployment must not have been applied.
        assert not engine.allocation.is_available(2, query.result_stream)

    def test_non_strict_engine_accepts_anything(self):
        catalog = make_catalog()
        engine = ClusterEngine(catalog, strict=False)
        engine.deploy(PlacementDelta(add_available={(0, 1)}))
        assert engine.allocation.is_available(0, 1)

    def test_host_change_after_unchecked_deploy_runs_full_oracle(self):
        # A non-strict deploy applies deltas unchecked, so a later
        # host-change report must not delta-validate around the changed
        # host only: it falls back to the full oracle and surfaces the
        # violation the unchecked delta introduced elsewhere.
        catalog = make_catalog(cpu=0.5)
        query = catalog.register_query(query_over("b0", "b1"))
        operator = catalog.producers_of(query.result_stream)[0]
        engine = ClusterEngine(catalog, strict=False)
        engine.fail_host(2)
        engine.deploy(
            PlacementDelta(
                add_available={(1, 1), (0, 0), (0, 1), (0, query.result_stream)},
                add_flows={(1, 0, 1)},
                add_placements={(0, operator.operator_id)},  # CPU overload
                set_provided={query.result_stream: 0},
                admit_queries={query.query_id},
            )
        )
        report = engine.restore_host(2)
        assert any("CPU overload" in v for v in report.violations)

    def test_strict_deploy_after_adopt_checks_full_base(self):
        # Delta-based deploy validation assumes a feasible base; adopt()
        # takes arbitrary external state, so the first strict deploy after
        # an adoption must fall back to a full validation and reject a
        # pre-existing violation even when the delta itself is harmless.
        catalog = make_catalog()
        engine = ClusterEngine(catalog)
        from repro.dsps.allocation import Allocation

        tainted = Allocation(catalog)
        tainted.available.add((2, 1))  # no source: infeasible base
        engine.adopt(tainted)
        with pytest.raises(AllocationError):
            engine.deploy(PlacementDelta(add_available={(0, 0)}))

    def test_fail_host_reports_preexisting_violations_on_untrusted_base(self):
        # An untrusted adopt means the engine cannot assume feasibility, so
        # a host-change report must come from the full oracle and surface
        # violations that predate (and are unrelated to) the failed host.
        # The taint must be one garbage collection keeps: a CPU-overloaded
        # but structurally valid placement of an admitted query.
        from repro.dsps.allocation import Allocation

        catalog = make_catalog(cpu=0.5)  # operator costs ~1.1 > capacity
        query = catalog.register_query(query_over("b0", "b1"))
        operator = catalog.producers_of(query.result_stream)[0]
        tainted = Allocation(catalog)
        tainted.apply(
            PlacementDelta(
                add_available={(1, 1), (0, 0), (0, 1), (0, query.result_stream)},
                add_flows={(1, 0, 1)},
                add_placements={(0, operator.operator_id)},
                set_provided={query.result_stream: 0},
                admit_queries={query.query_id},
            )
        )
        tainted.drain_touched()
        assert any("CPU overload" in v for v in tainted.validate())

        engine = ClusterEngine(catalog)
        engine.adopt(tainted)
        report = engine.fail_host(2)  # unrelated host, no victims
        assert any("CPU overload" in v for v in report.violations)
        # A trusted adopt restores the delta-validation fast path: the
        # slice around the unrelated host never looks at the stale taint.
        engine.restore_host(2)
        engine.adopt(tainted.copy(), trusted=True)
        report = engine.fail_host(2)
        assert report.clean

    def test_strict_deploy_after_adopting_feasible_state_works(self, deployed):
        catalog, query, operator, engine = deployed
        fresh = ClusterEngine(catalog)
        fresh.adopt(engine.allocation.copy())
        # Feasible adopted base: the (full) re-validation passes and
        # subsequent deploys go back to delta checking.  Stream 1 is a base
        # stream injected at host 1, so marking it available there is fine.
        fresh.deploy(PlacementDelta(add_available={(1, 1)}))
        assert fresh.allocation.is_available(1, 1)
        bad = PlacementDelta(add_available={(2, query.result_stream)})
        with pytest.raises(AllocationError):
            fresh.deploy(bad)

    def test_report_contents(self, deployed):
        catalog, query, operator, engine = deployed
        report = engine.report()
        assert report.num_admitted_queries == 1
        assert len(report.cpu_utilisation) == catalog.num_hosts
        assert report.is_consistent
        assert report.max_cpu_utilisation >= report.mean_cpu_utilisation

    def test_reset(self, deployed):
        catalog, query, operator, engine = deployed
        engine.reset()
        assert engine.report().num_admitted_queries == 0
        assert engine.num_deployments == 0

    def test_reset_clears_shared_monitor_drift(self, deployed):
        # Regression: reset() used to leave the shared ResourceMonitor with
        # the previous repetition's drift factors, so a fresh repetition
        # observed phantom drift and replanned queries that never drifted.
        catalog, query, operator, engine = deployed
        engine.monitor.set_operator_drift(operator.operator_id, 3.0)
        assert engine.monitor.drifted_operators(threshold=0.1) == [
            operator.operator_id
        ]
        engine.reset()
        assert engine.monitor.drift_of(operator.operator_id) == 1.0
        assert engine.monitor.drifted_operators(threshold=0.1) == []

    def test_reset_reactivates_failed_hosts(self, deployed):
        catalog, query, operator, engine = deployed
        engine.fail_host(2)
        assert catalog.host_ids == [0, 1]
        engine.reset()
        assert catalog.host_ids == [0, 1, 2]

    def test_monitor_reset_drift_is_explicit(self, deployed):
        catalog, query, operator, engine = deployed
        monitor = ResourceMonitor(catalog)
        monitor.set_operator_drift(operator.operator_id, 2.0)
        monitor.reset_drift()
        assert monitor.drift_of(operator.operator_id) == 1.0
