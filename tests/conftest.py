"""Shared fixtures for the test suite.

The fixtures build deliberately tiny systems (3–4 hosts, a handful of base
streams) so that every MILP solved during the tests is small enough to be
solved to optimality in milliseconds by either backend.
"""

from __future__ import annotations

import pytest

from repro.core.planner import PlannerConfig, SQPRPlanner
from repro.dsps.catalog import SystemCatalog
from repro.dsps.cost_model import LinearCostModel
from repro.dsps.query import DecompositionMode, QueryWorkloadItem
from repro.workloads.scenarios import (
    SimulationScenarioConfig,
    build_simulation_scenario,
)


def make_catalog(
    num_hosts: int = 3,
    cpu: float = 10.0,
    bandwidth: float = 200.0,
    num_base: int = 4,
    rate: float = 10.0,
    decomposition: DecompositionMode = DecompositionMode.CANONICAL,
) -> SystemCatalog:
    """Build a small catalog with one base stream per host (round-robin)."""
    catalog = SystemCatalog(
        cost_model=LinearCostModel(seed=1),
        decomposition=decomposition,
        default_link_capacity=1000.0,
    )
    for i in range(num_hosts):
        catalog.add_host(cpu_capacity=cpu, bandwidth_capacity=bandwidth, name=f"h{i}")
    for i in range(num_base):
        catalog.add_base_stream(f"b{i}", rate, i % num_hosts)
    return catalog


@pytest.fixture
def tiny_catalog() -> SystemCatalog:
    """Three hosts, four base streams, canonical decomposition."""
    return make_catalog()


@pytest.fixture
def bushy_catalog() -> SystemCatalog:
    """Three hosts, four base streams, exhaustive decomposition."""
    return make_catalog(decomposition=DecompositionMode.EXHAUSTIVE)


@pytest.fixture
def tiny_planner(tiny_catalog: SystemCatalog) -> SQPRPlanner:
    """An SQPR planner on the tiny catalog with validation enabled.

    The tiny models solve to optimality in milliseconds; the time limit is
    only a safety net, so it is kept low to cap worst-case test duration.
    """
    config = PlannerConfig(time_limit=1.0, validate_after_apply=True)
    return SQPRPlanner(tiny_catalog, config=config)


@pytest.fixture
def small_scenario():
    """A very small simulation scenario for integration tests."""
    config = SimulationScenarioConfig(
        num_hosts=4,
        num_base_streams=12,
        host_cpu_capacity=6.0,
        host_bandwidth=200.0,
        decomposition=DecompositionMode.CANONICAL,
        seed=3,
    )
    return build_simulation_scenario(config)


def query_over(*names: str) -> QueryWorkloadItem:
    """Shorthand for a :class:`QueryWorkloadItem` over the given streams."""
    return QueryWorkloadItem(base_names=tuple(names))
