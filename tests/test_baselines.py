"""Tests for the heuristic planner and the SODA-like planner."""

from __future__ import annotations

import pytest

from repro.baselines.heuristic import HeuristicPlanner
from repro.baselines.soda.macroq import admit_queries, marginal_cpu_requirement
from repro.baselines.soda.macrow import place_template
from repro.baselines.soda.planner import SodaPlanner
from repro.baselines.soda.templates import build_template
from repro.dsps.allocation import Allocation
from tests.conftest import make_catalog, query_over


class TestHeuristicPlanner:
    def test_admits_first_query_feasibly(self, tiny_catalog):
        planner = HeuristicPlanner(tiny_catalog)
        outcome = planner.submit(query_over("b0", "b1"))
        assert outcome.admitted
        assert outcome.host is not None
        assert planner.allocation.validate() == []

    def test_duplicate_query_free(self, tiny_catalog):
        planner = HeuristicPlanner(tiny_catalog)
        planner.submit(query_over("b0", "b1"))
        duplicate = planner.submit(query_over("b1", "b0"))
        assert duplicate.admitted and duplicate.duplicate

    def test_reuses_existing_subquery(self, tiny_catalog):
        planner = HeuristicPlanner(tiny_catalog)
        planner.submit(query_over("b0", "b1"))
        cpu_before = planner.allocation.total_cpu_used()
        outcome = planner.submit(query_over("b0", "b1", "b2"))
        assert outcome.admitted
        extra = planner.allocation.total_cpu_used() - cpu_before
        query = outcome.query
        costs = [tiny_catalog.get_operator(o).cpu_cost for o in query.candidate_operators]
        assert extra <= max(costs) + 1e-6
        assert planner.allocation.validate() == []

    def test_rejects_when_no_single_host_fits(self):
        # Each host can fit one join operator; a 3-way join (two operators)
        # cannot be implemented on a single host once both are loaded.
        catalog = make_catalog(num_hosts=2, cpu=1.3, num_base=4)
        planner = HeuristicPlanner(catalog)
        assert planner.submit(query_over("b0", "b1")).admitted
        assert planner.submit(query_over("b2", "b3")).admitted
        outcome = planner.submit(query_over("b0", "b2", "b3"))
        assert not outcome.admitted
        assert planner.allocation.validate() == []

    def test_sequence_stays_feasible(self, tiny_catalog):
        planner = HeuristicPlanner(tiny_catalog)
        for names in (("b0", "b1"), ("b1", "b2"), ("b0", "b1", "b2"), ("b2", "b3")):
            planner.submit(query_over(*names))
        assert planner.allocation.validate() == []
        assert planner.num_admitted >= 3

    def test_abstract_plan_enumeration_bushy(self, bushy_catalog):
        planner = HeuristicPlanner(bushy_catalog)
        query = bushy_catalog.register_query(query_over("b0", "b1", "b2"))
        plans = planner._abstract_plans(query)
        # Three bushy decompositions of a 3-way join.
        assert len(plans) == 3
        for plan in plans:
            assert len(plan) == 2


class TestSodaTemplates:
    def test_template_is_canonical_chain(self, tiny_catalog):
        query = tiny_catalog.register_query(query_over("b0", "b1", "b2"))
        template = build_template(tiny_catalog, query)
        assert len(template.operators) == 2
        assert template.result_stream == query.result_stream
        assert template.total_cpu(tiny_catalog) > 0.0

    def test_template_in_exhaustive_catalog(self, bushy_catalog):
        query = bushy_catalog.register_query(query_over("b0", "b1", "b2"))
        template = build_template(bushy_catalog, query)
        assert len(template.operators) == 2


class TestSodaStages:
    def test_macroq_admits_within_capacity(self, tiny_catalog):
        q1 = tiny_catalog.register_query(query_over("b0", "b1"))
        q2 = tiny_catalog.register_query(query_over("b1", "b2"))
        templates = [build_template(tiny_catalog, q) for q in (q1, q2)]
        allocation = Allocation(tiny_catalog)
        decisions = admit_queries(tiny_catalog, allocation, templates)
        assert all(d.admitted for d in decisions)

    def test_macroq_rejects_beyond_capacity(self):
        catalog = make_catalog(num_hosts=1, cpu=1.2, num_base=4)
        q1 = catalog.register_query(query_over("b0", "b1"))
        q2 = catalog.register_query(query_over("b2", "b3"))
        templates = [build_template(catalog, q) for q in (q1, q2)]
        decisions = admit_queries(catalog, Allocation(catalog), templates)
        assert decisions[0].admitted
        assert not decisions[1].admitted

    def test_marginal_cpu_accounts_for_gluing(self, tiny_catalog):
        q1 = tiny_catalog.register_query(query_over("b0", "b1"))
        template = build_template(tiny_catalog, q1)
        allocation = Allocation(tiny_catalog)
        full = marginal_cpu_requirement(tiny_catalog, allocation, template)
        assert full > 0.0
        allocation.placements.add((0, template.operators[0]))
        assert marginal_cpu_requirement(tiny_catalog, allocation, template) == 0.0

    def test_macrow_places_feasibly(self, tiny_catalog):
        query = tiny_catalog.register_query(query_over("b0", "b1", "b2"))
        template = build_template(tiny_catalog, query)
        result = place_template(tiny_catalog, Allocation(tiny_catalog), template)
        assert result.success
        assert result.allocation.validate() == []
        assert result.allocation.is_provided(query.result_stream)

    def test_macrow_fails_when_no_cpu(self):
        catalog = make_catalog(num_hosts=2, cpu=0.05, num_base=3)
        query = catalog.register_query(query_over("b0", "b1"))
        template = build_template(catalog, query)
        result = place_template(catalog, Allocation(catalog), template)
        assert not result.success


class TestSodaPlanner:
    def test_epoch_planning(self, tiny_catalog):
        planner = SodaPlanner(tiny_catalog)
        outcomes = planner.submit_epoch(
            [query_over("b0", "b1"), query_over("b1", "b2"), query_over("b0", "b1")]
        )
        assert len(outcomes) == 3
        assert all(o.admitted for o in outcomes)
        assert planner.allocation.validate() == []

    def test_duplicate_across_epochs_is_free(self, tiny_catalog):
        planner = SodaPlanner(tiny_catalog)
        planner.submit_epoch([query_over("b0", "b1")])
        outcome = planner.submit(query_over("b1", "b0"))
        assert outcome.admitted and outcome.duplicate

    def test_rejection_reasons_recorded(self):
        catalog = make_catalog(num_hosts=1, cpu=1.2, num_base=4)
        planner = SodaPlanner(catalog)
        outcomes = planner.submit_epoch(
            [query_over("b0", "b1"), query_over("b2", "b3")]
        )
        assert outcomes[0].admitted
        assert not outcomes[1].admitted
        assert outcomes[1].rejected_by in ("macroq", "macrow")

    def test_miniw_can_be_disabled(self, tiny_catalog):
        planner = SodaPlanner(tiny_catalog, use_miniw=False)
        outcome = planner.submit(query_over("b0", "b1", "b2"))
        assert outcome.admitted
        assert planner.allocation.validate() == []

    def test_sequence_stays_feasible(self, tiny_catalog):
        planner = SodaPlanner(tiny_catalog)
        for names in (("b0", "b1"), ("b1", "b2"), ("b0", "b1", "b2"), ("b2", "b3")):
            planner.submit(query_over(*names))
        assert planner.allocation.validate() == []
        assert planner.num_admitted >= 3
