"""End-to-end integration tests spanning planner, engine and experiments."""

from __future__ import annotations

import pytest

from repro.baselines.heuristic import HeuristicPlanner
from repro.baselines.soda.planner import SodaPlanner
from repro.core.optimistic import OptimisticBoundPlanner
from repro.core.planner import PlannerConfig, SQPRPlanner
from repro.dsps.engine import ClusterEngine
from repro.dsps.plan import extract_plan
from repro.experiments.runner import run_admission_experiment
from repro.experiments import figures
from repro.workloads.scenarios import (
    ClusterScenarioConfig,
    SimulationScenarioConfig,
    build_cluster_scenario,
    build_simulation_scenario,
)
from repro.dsps.query import DecompositionMode


@pytest.fixture(scope="module")
def mini_scenario():
    """A miniature simulation scenario shared by the integration tests."""
    return build_simulation_scenario(
        SimulationScenarioConfig(
            num_hosts=4,
            num_base_streams=10,
            host_cpu_capacity=5.0,
            host_bandwidth=200.0,
            decomposition=DecompositionMode.CANONICAL,
            seed=5,
        )
    )


@pytest.mark.slow
class TestEndToEndAdmission:
    def test_sqpr_run_produces_valid_plans(self, mini_scenario):
        catalog = mini_scenario.build_catalog()
        planner = SQPRPlanner(
            catalog, config=PlannerConfig(time_limit=1.0, validate_after_apply=True)
        )
        workload = mini_scenario.workload(12, arities=(2, 3))
        curve = run_admission_experiment(planner, workload, checkpoint_every=4)
        assert curve.total_satisfied >= 4
        assert planner.allocation.validate() == []
        # Every admitted query must have an extractable, structurally valid plan.
        for query_id in planner.allocation.admitted_queries:
            query = catalog.get_query(query_id)
            plan = extract_plan(catalog, planner.allocation, query.result_stream)
            assert plan.is_valid(catalog)

    def test_all_planners_agree_on_easy_workload(self, mini_scenario):
        """With abundant resources every planner admits every query."""
        workload = mini_scenario.workload(6, arities=(2,))
        results = {}
        results["sqpr"] = run_admission_experiment(
            SQPRPlanner(mini_scenario.build_catalog(), config=PlannerConfig(time_limit=1.0)),
            workload,
        ).total_satisfied
        results["heuristic"] = run_admission_experiment(
            HeuristicPlanner(mini_scenario.build_catalog()), workload
        ).total_satisfied
        results["soda"] = run_admission_experiment(
            SodaPlanner(mini_scenario.build_catalog()), workload
        ).total_satisfied
        results["bound"] = run_admission_experiment(
            OptimisticBoundPlanner(mini_scenario.build_catalog()), workload
        ).total_satisfied
        assert results["sqpr"] == results["heuristic"] == results["soda"] == len(workload)
        assert results["bound"] == len(workload)

    def test_engine_deployment_of_planner_output(self, mini_scenario):
        """The cluster engine accepts exactly what the planner decided."""
        catalog = mini_scenario.build_catalog()
        planner = SQPRPlanner(catalog, config=PlannerConfig(time_limit=1.0))
        engine = ClusterEngine(catalog, strict=False)
        for item in mini_scenario.workload(8, arities=(2, 3)):
            planner.submit(item)
        engine.allocation = planner.allocation.copy()
        report = engine.report()
        assert report.is_consistent
        assert report.num_admitted_queries == planner.num_admitted
        assert max(report.cpu_utilisation) <= 1.0 + 1e-6


@pytest.mark.slow
class TestClusterComparison:
    def test_sqpr_and_soda_on_cluster_scenario(self):
        scenario = build_cluster_scenario(
            ClusterScenarioConfig(num_hosts=4, num_base_streams=20, seed=2)
        )
        workload = scenario.workload(10, arities=(2, 3))
        sqpr = SQPRPlanner(
            scenario.build_catalog(), config=PlannerConfig(time_limit=1.0)
        )
        soda = SodaPlanner(scenario.build_catalog())
        sqpr_curve = run_admission_experiment(sqpr, workload)
        soda_curve = run_admission_experiment(soda, workload, group_size=5)
        assert sqpr.allocation.validate() == []
        assert soda.allocation.validate() == []
        # In an uncontended cluster both planners admit nearly everything.
        assert sqpr_curve.total_satisfied >= soda_curve.total_satisfied - 1


class TestFigureSmoke:
    """Tiny-scale smoke runs of the figure drivers (full runs live in benchmarks/)."""

    def test_fig4a_smoke(self, mini_scenario):
        result = figures.fig4a_planning_efficiency(
            scenario=mini_scenario,
            num_queries=6,
            timeouts=(0.5,),
            checkpoint_every=3,
            arities=(2,),
        )
        assert "submitted" in result.series
        assert "heuristic" in result.series
        assert "optimistic_bound" in result.series
        assert any(key.startswith("sqpr_timeout") for key in result.series)
        assert "Fig 4(a)" in result.to_text()

    def test_fig6b_smoke(self):
        result = figures.fig6b_planning_time_vs_arity(
            arities=(2,), num_queries=3, time_limit=0.5
        )
        assert len(result.series["avg_planning_time_s"]) == 1
        assert result.series["avg_planning_time_s"][0] >= 0.0
