"""Property-based mirror tests of the indexed allocation state.

The :class:`~repro.dsps.allocation.Allocation` maintains reverse indexes,
cached resource aggregates, a rolling fingerprint and touched-entity
tracking incrementally on *every* mutation path — ``apply``, direct set
mutation, bulk in-place operators, copies.  These tests pin the contract:

* after any random mutation sequence, every indexed accessor and cached
  aggregate equals the naive full-scan recomputation over the ground-truth
  sets (the ``*_scan`` oracles),
* ``validate_delta`` over the touched sets reports exactly what the full
  ``validate()`` oracle reports,
* equal-content allocations fingerprint equally regardless of history,
* copies are fully independent of their source.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dsps.allocation import (
    Allocation,
    PlacementDelta,
    delta_touched_sets,
    touched_between,
)
from repro.dsps.catalog import SystemCatalog
from repro.dsps.cost_model import LinearCostModel
from repro.dsps.query import DecompositionMode
from tests.conftest import make_catalog, query_over

APPROX = dict(rel=1e-9, abs=1e-9)

NUM_HOSTS = 3
NUM_BASE = 4


def build_catalog():
    catalog = make_catalog(num_hosts=NUM_HOSTS, num_base=NUM_BASE)
    catalog.register_query(query_over("b0", "b1"))
    catalog.register_query(query_over("b1", "b2"))
    catalog.register_query(query_over("b2", "b3"))
    return catalog


#: One shared read-only catalog: streams/operators/queries are immutable
#: once registered, and the tests never touch host liveness on it.
CATALOG = build_catalog()
STREAM_IDS = sorted(
    set(range(NUM_BASE)) | {q.result_stream for q in CATALOG.queries}
)
OPERATOR_IDS = [op.operator_id for op in CATALOG.operators]
QUERY_IDS = [q.query_id for q in CATALOG.queries]
HOSTS = list(range(NUM_HOSTS))


def hosts_st():
    return st.sampled_from(HOSTS)


def streams_st():
    return st.sampled_from(STREAM_IDS)


@st.composite
def mutations(draw, max_ops: int = 40):
    """A random sequence of raw mutation operations."""
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_ops))):
        kind = draw(
            st.sampled_from(
                [
                    "add_flow",
                    "remove_flow",
                    "add_avail",
                    "remove_avail",
                    "add_place",
                    "remove_place",
                    "provide",
                    "unprovide",
                    "admit",
                    "unadmit",
                    "apply_delta",
                    "bulk_sub",
                    "copy",
                ]
            )
        )
        if kind in ("add_flow", "remove_flow"):
            src = draw(hosts_st())
            dst = draw(st.sampled_from([h for h in HOSTS if h != src]))
            ops.append((kind, (src, dst, draw(streams_st()))))
        elif kind in ("add_avail", "remove_avail"):
            ops.append((kind, (draw(hosts_st()), draw(streams_st()))))
        elif kind in ("add_place", "remove_place"):
            ops.append(
                (kind, (draw(hosts_st()), draw(st.sampled_from(OPERATOR_IDS))))
            )
        elif kind == "provide":
            ops.append((kind, (draw(streams_st()), draw(hosts_st()))))
        elif kind == "unprovide":
            ops.append((kind, draw(streams_st())))
        elif kind in ("admit", "unadmit"):
            ops.append((kind, draw(st.sampled_from(QUERY_IDS))))
        elif kind == "apply_delta":
            ops.append(
                (
                    kind,
                    PlacementDelta(
                        add_flows={
                            (0, 1, draw(streams_st())),
                            (1, 2, draw(streams_st())),
                        },
                        remove_flows={(0, 1, draw(streams_st()))},
                        add_available={(draw(hosts_st()), draw(streams_st()))},
                        remove_available={(draw(hosts_st()), draw(streams_st()))},
                        add_placements={
                            (draw(hosts_st()), draw(st.sampled_from(OPERATOR_IDS)))
                        },
                        set_provided={draw(streams_st()): draw(hosts_st())},
                        unset_provided={draw(streams_st())},
                        admit_queries={draw(st.sampled_from(QUERY_IDS))},
                    ),
                )
            )
        else:  # bulk_sub / copy carry no payload beyond what they draw
            ops.append((kind, None))
    return ops


def apply_mutation(allocation: Allocation, op) -> Allocation:
    """Apply one mutation; returns the (possibly replaced) allocation."""
    kind, payload = op
    if kind == "add_flow":
        allocation.flows.add(payload)
    elif kind == "remove_flow":
        allocation.flows.discard(payload)
    elif kind == "add_avail":
        allocation.available.add(payload)
    elif kind == "remove_avail":
        allocation.available.discard(payload)
    elif kind == "add_place":
        allocation.placements.add(payload)
    elif kind == "remove_place":
        allocation.placements.discard(payload)
    elif kind == "provide":
        stream_id, host = payload
        allocation.provided[stream_id] = host
    elif kind == "unprovide":
        allocation.provided.pop(payload, None)
    elif kind == "admit":
        allocation.admit_query(payload)
    elif kind == "unadmit":
        allocation.admitted_queries.discard(payload)
    elif kind == "apply_delta":
        allocation.apply(payload)
    elif kind == "bulk_sub":
        # Exercise the in-place set operators (removals of half the flows).
        doomed = set(sorted(allocation.flows)[::2])
        allocation.flows -= doomed
    elif kind == "copy":
        allocation = allocation.copy()
    return allocation


def assert_mirrors_naive(allocation: Allocation) -> None:
    """Every indexed accessor equals the naive ground-truth recomputation."""
    flows = set(allocation.flows)
    available = set(allocation.available)
    placements = set(allocation.placements)
    provided = dict(allocation.provided)

    for host in HOSTS:
        assert allocation.operators_on(host) == frozenset(
            o for (h, o) in placements if h == host
        )
        assert allocation.streams_at(host) == frozenset(
            s for (h, s) in available if h == host
        )
        assert allocation.provided_at(host) == frozenset(
            s for s, h in provided.items() if h == host
        )
        assert allocation.flows_of_host(host) == frozenset(
            f for f in flows if host in f[:2]
        )
        assert allocation.cpu_used(host) == pytest.approx(
            allocation.cpu_used_scan(host), **APPROX
        )
        assert allocation.out_bandwidth_used(host) == pytest.approx(
            allocation.out_bandwidth_used_scan(host), **APPROX
        )
        assert allocation.in_bandwidth_used(host) == pytest.approx(
            allocation.in_bandwidth_used_scan(host), **APPROX
        )
        for dst in HOSTS:
            assert allocation.link_used(host, dst) == pytest.approx(
                allocation.link_used_scan(host, dst), **APPROX
            )
        for stream_id in STREAM_IDS:
            assert allocation.flow_sources(host, stream_id) == sorted(
                src for (src, dst, s) in flows if dst == host and s == stream_id
            )

    for stream_id in STREAM_IDS:
        assert allocation.hosts_with_stream(stream_id) == frozenset(
            h for (h, s) in available if s == stream_id
        )
        assert allocation.flow_edges_of_stream(stream_id) == frozenset(
            (src, dst) for (src, dst, s) in flows if s == stream_id
        )
    for operator_id in OPERATOR_IDS:
        assert allocation.hosts_of_operator(operator_id) == frozenset(
            h for (h, o) in placements if o == operator_id
        )
        assert allocation.queries_using_operator(
            operator_id
        ) == allocation.queries_using_operator_scan(operator_id)

    for stream_id in STREAM_IDS:
        assert allocation.stream_fingerprint(
            stream_id
        ) == allocation.stream_fingerprint_scan(stream_id)
        assert allocation.queries_using_stream(
            stream_id
        ) == allocation.queries_using_stream_scan(stream_id)
        assert allocation.queries_for_result(
            stream_id
        ) == allocation.queries_for_result_scan(stream_id)
    assert allocation.placed_operators() == sorted({o for (_h, o) in placements})
    assert allocation.max_cpu_used() == pytest.approx(
        allocation.max_cpu_used_scan(), **APPROX
    )
    assert allocation.total_cpu_used() == pytest.approx(
        sum(allocation.cpu_used_scan(h) for h in CATALOG.host_ids), **APPROX
    )
    assert allocation.total_network_used() == pytest.approx(
        sum(CATALOG.stream_rate(s) for (_h, _m, s) in flows), **APPROX
    )

    # Excluded-scan parity on a couple of representative exclude sets.
    exclude_streams = set(STREAM_IDS[::2])
    exclude_operators = set(OPERATOR_IDS[::2])
    for host in HOSTS:
        assert allocation.cpu_used(host, exclude_operators) == pytest.approx(
            allocation.cpu_used_scan(host, exclude_operators), **APPROX
        )
        assert allocation.out_bandwidth_used(host, exclude_streams) == pytest.approx(
            allocation.out_bandwidth_used_scan(host, exclude_streams), **APPROX
        )
        assert allocation.in_bandwidth_used(host, exclude_streams) == pytest.approx(
            allocation.in_bandwidth_used_scan(host, exclude_streams), **APPROX
        )
        for dst in HOSTS:
            assert allocation.link_used(host, dst, exclude_streams) == pytest.approx(
                allocation.link_used_scan(host, dst, exclude_streams), **APPROX
            )

    # Fingerprint: rebuilding the same contents from scratch (different
    # history, different insertion order) must produce the same digest.
    rebuilt = Allocation(CATALOG)
    for key in sorted(flows, reverse=True):
        rebuilt.flows.add(key)
    for key in sorted(available, reverse=True):
        rebuilt.available.add(key)
    for key in sorted(placements, reverse=True):
        rebuilt.placements.add(key)
    for stream_id, host in sorted(provided.items(), reverse=True):
        rebuilt.provided[stream_id] = host
    for query_id in sorted(allocation.admitted_queries, reverse=True):
        rebuilt.admit_query(query_id)
    assert rebuilt.fingerprint() == allocation.fingerprint()
    assert rebuilt.structural_fingerprint() == allocation.structural_fingerprint()
    for stream_id in STREAM_IDS:
        assert rebuilt.stream_fingerprint(
            stream_id
        ) == allocation.stream_fingerprint(stream_id)


common_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestIndexMirror:
    @given(ops=mutations())
    @common_settings
    def test_indexes_equal_naive_recomputation_after_any_sequence(self, ops):
        allocation = Allocation(CATALOG)
        for op in ops:
            allocation = apply_mutation(allocation, op)
        assert_mirrors_naive(allocation)

    @given(ops=mutations(max_ops=20))
    @common_settings
    def test_validate_delta_over_cumulative_touched_equals_oracle(self, ops):
        # From an empty allocation every structure that exists was touched
        # at some point, so the union of all drained touched sets covers the
        # whole state and delta validation must agree with the full oracle.
        allocation = Allocation(CATALOG)
        hosts, streams, operators = set(), set(), set()
        for op in ops:
            before = allocation
            allocation = apply_mutation(allocation, op)
            if allocation is not before:
                th, ts, to = touched_between(before, allocation)
                allocation.drain_touched()
            else:
                th, ts, to = allocation.drain_touched()
            hosts |= th
            streams |= ts
            operators |= to
        delta_report = allocation.validate_delta(hosts, streams, operators)
        assert sorted(delta_report) == sorted(allocation.validate())

    @given(ops=mutations(max_ops=25))
    @common_settings
    def test_rolling_fingerprint_tracks_exact_fingerprint(self, ops):
        # The model-reuse cache keys rounds by the O(1) rolling fingerprint;
        # this pins it to the exact content-enumerating one: equal contents
        # (however reached) agree, and every content change moves both.
        from repro.core.model_builder import (
            allocation_fingerprint,
            allocation_fingerprint_exact,
        )

        allocation = Allocation(CATALOG)
        seen = {}
        for op in ops:
            allocation = apply_mutation(allocation, op)
            exact = allocation_fingerprint_exact(allocation)
            rolling = allocation_fingerprint(allocation)
            assert rolling == allocation.fingerprint()
            if exact in seen:
                # Same contents reached through a different history must
                # produce the same rolling digest.
                assert seen[exact] == rolling
            seen[exact] = rolling
        # Distinct contents never collided across this run's states.
        assert len(set(seen.values())) == len(seen)

    @given(ops=mutations(max_ops=20))
    @common_settings
    def test_copy_is_independent(self, ops):
        allocation = Allocation(CATALOG)
        for op in ops:
            allocation = apply_mutation(allocation, op)
        snapshot_fp = allocation.fingerprint()
        clone = allocation.copy()
        assert clone.fingerprint() == snapshot_fp
        # Mutating the clone must leave the original (sets, indexes,
        # aggregates, fingerprint) untouched.
        clone.flows.add((0, 2, STREAM_IDS[0]))
        clone.placements.add((2, OPERATOR_IDS[0]))
        clone.provided[STREAM_IDS[0]] = 2
        assert allocation.fingerprint() == snapshot_fp
        assert_mirrors_naive(allocation)
        assert_mirrors_naive(clone)


class TestFingerprintCancellation:
    """Adversarial duplicate add/remove sequences against the rolling XOR.

    An XOR accumulator over a *multiset* would let a duplicate insertion
    cancel itself (x ^ x == 0) and report an empty-looking digest for a
    non-empty state.  The observed collections are sets, so a second add
    of a present key must be a no-op for the fingerprint, and remove/add
    churn must always land back on the content digest.  These tests pin
    that by pitting the rolling digest against the content-enumerating
    oracle under sequences crafted to trigger cancellation.
    """

    def test_duplicate_add_is_a_fingerprint_noop(self):
        from repro.core.model_builder import (
            allocation_fingerprint,
            allocation_fingerprint_exact,
        )

        allocation = Allocation(CATALOG)
        flow = (0, 1, STREAM_IDS[0])
        allocation.flows.add(flow)
        once = allocation_fingerprint(allocation)
        # A second add of the same key must not XOR the term again (which
        # would cancel it and make the state fingerprint as empty).
        allocation.flows.add(flow)
        allocation.flows.update([flow])
        allocation.flows |= {flow}
        assert allocation_fingerprint(allocation) == once
        assert allocation_fingerprint(allocation) != Allocation(
            CATALOG
        ).fingerprint()
        assert len(allocation.flows) == 1
        assert allocation_fingerprint_exact(
            allocation
        ) == allocation_fingerprint_exact(allocation)

    def test_remove_absent_key_is_a_fingerprint_noop(self):
        allocation = Allocation(CATALOG)
        avail = (0, STREAM_IDS[1])
        allocation.available.add(avail)
        once = allocation.fingerprint()
        allocation.available.discard((2, STREAM_IDS[1]))
        allocation.available -= {(1, STREAM_IDS[1])}
        assert allocation.fingerprint() == once

    @given(
        key=st.tuples(
            st.sampled_from(HOSTS), st.sampled_from(STREAM_IDS)
        ),
        churn=st.lists(st.booleans(), min_size=1, max_size=30),
    )
    @common_settings
    def test_add_remove_churn_lands_on_content_digest(self, key, churn):
        # Replay an arbitrary present/absent toggle history for one key and
        # check the rolling digest matches a fresh same-content build.
        from repro.core.model_builder import (
            allocation_fingerprint,
            allocation_fingerprint_exact,
        )

        allocation = Allocation(CATALOG)
        for want_present in churn:
            if want_present:
                allocation.available.add(key)
            else:
                allocation.available.discard(key)
        reference = Allocation(CATALOG)
        if churn[-1]:
            reference.available.add(key)
        assert allocation_fingerprint(allocation) == allocation_fingerprint(
            reference
        )
        assert allocation_fingerprint_exact(
            allocation
        ) == allocation_fingerprint_exact(reference)
        assert allocation.stream_fingerprint(
            key[1]
        ) == allocation.stream_fingerprint_scan(key[1])

    @given(ops=mutations(max_ops=30))
    @common_settings
    def test_structural_fingerprint_is_blind_to_admitted_churn(self, ops):
        allocation = Allocation(CATALOG)
        for op in ops:
            allocation = apply_mutation(allocation, op)
        before = allocation.structural_fingerprint()
        # Admitted-set churn never moves the structural fingerprint.
        for query_id in QUERY_IDS:
            allocation.admit_query(query_id)
            assert allocation.structural_fingerprint() == before
        for query_id in QUERY_IDS:
            allocation.admitted_queries.discard(query_id)
        assert allocation.structural_fingerprint() == before
        full_before = allocation.fingerprint()
        # A structural change moves it.
        probe = (2, STREAM_IDS[-1])
        was_present = probe in allocation.available
        if was_present:
            allocation.available.discard(probe)
        else:
            allocation.available.add(probe)
        assert allocation.structural_fingerprint() != before
        # Round-trip back restores both digests (history-independence).
        if was_present:
            allocation.available.add(probe)
        else:
            allocation.available.discard(probe)
        assert allocation.structural_fingerprint() == before
        assert allocation.fingerprint() == full_before


class TestValidateDeltaFromValidState:
    """Delta validation from a *valid* state finds exactly the oracle's
    violations for any single perturbation — the contract the simulation
    harness relies on event after event."""

    def build_valid_allocation(self):
        from repro.api import create_planner

        catalog = build_catalog()
        planner = create_planner("heuristic", catalog)
        for query in catalog.queries:
            planner.submit(query)
        allocation = planner.allocation
        assert allocation.validate() == []
        allocation.drain_touched()
        return catalog, allocation

    def perturbations(self, allocation):
        yield "remove_flow", lambda a: a.flows and a.flows.discard(
            sorted(a.flows)[0]
        )
        yield "remove_avail", lambda a: a.available.discard(
            sorted(a.available)[0]
        )
        yield "remove_place", lambda a: a.placements.discard(
            sorted(a.placements)[0]
        )
        yield "bogus_avail", lambda a: a.available.add((2, sorted(a.provided)[0]))
        yield "bogus_provide", lambda a: a.provided.__setitem__(
            sorted(a.provided)[0], 2
        )
        yield "bogus_flow", lambda a: a.flows.add((2, 0, sorted(a.provided)[0]))

    def test_single_perturbations_match_oracle(self):
        for name, perturb in self.perturbations(None):
            catalog, allocation = self.build_valid_allocation()
            perturb(allocation)
            touched = allocation.drain_touched()
            delta_report = allocation.validate_delta(*touched)
            assert sorted(delta_report) == sorted(allocation.validate()), name

    def test_offline_host_liveness_detected(self):
        catalog, allocation = self.build_valid_allocation()
        # Take a host that actually carries structures offline; every
        # liveness violation the oracle sees must surface through the
        # touched-host slice alone.
        loaded = max(catalog.host_ids, key=allocation.cpu_used)
        catalog.deactivate_host(loaded)
        delta_report = allocation.validate_delta({loaded})
        assert sorted(delta_report) == sorted(allocation.validate())
        assert delta_report  # the loaded host had placements
        catalog.activate_host(loaded)


class TestTouchedInheritance:
    """Touched tracking survives the mutate-in-place-then-replace pattern
    of the planners' garbage-collection path: draining the successor object
    must still report the in-place mutations of the same event."""

    def test_rebuild_seeds_touched_from_source(self):
        from repro.api import create_planner
        from repro.dsps.plan import rebuild_minimal_allocation

        catalog = build_catalog()
        planner = create_planner("heuristic", catalog)
        for query in catalog.queries:
            planner.submit(query)
        allocation = planner.allocation
        allocation.drain_touched()

        # In-place mutation (as a planner applying a decoded delta does) …
        operator_id = OPERATOR_IDS[0]
        placed_host = sorted(allocation.hosts_of_operator(operator_id))
        extra_host = next(
            h for h in catalog.host_ids if h not in placed_host
        )
        allocation.placements.add((extra_host, operator_id))
        # … followed by a rebuild that garbage-collects the redundant
        # placement into a fresh object.
        rebuilt = rebuild_minimal_allocation(catalog, allocation)
        assert (extra_host, operator_id) not in rebuilt.placements
        hosts, _streams, operators = rebuilt.drain_touched()
        assert extra_host in hosts
        assert operator_id in operators

    def test_copy_carries_pending_touched(self):
        allocation = Allocation(CATALOG)
        allocation.available.add((0, 0))
        clone = allocation.copy()
        clone.available.add((1, 1))
        hosts, streams, _ = clone.drain_touched()
        assert hosts == {0, 1}
        assert streams == {0, 1}


class TestObservedCollections:
    """Every mutating entry point of the observed collections keeps the
    indexes in sync — including the rarely used bulk/in-place forms."""

    def test_set_entry_points(self):
        allocation = Allocation(CATALOG)
        flows = allocation.flows
        flows.add((0, 1, 0))
        flows.update({(1, 2, 1), (0, 2, 2)})
        flows |= {(2, 0, 3)}
        assert_mirrors_naive(allocation)
        flows.remove((0, 1, 0))
        with pytest.raises(KeyError):
            flows.remove((0, 1, 0))
        flows.discard((9, 9, 9))  # absent: no-op
        flows -= {(1, 2, 1)}
        assert_mirrors_naive(allocation)
        flows ^= {(0, 2, 2), (1, 0, 1)}  # drops one, adds one
        assert (1, 0, 1) in flows and (0, 2, 2) not in flows
        flows &= {(1, 0, 1)}
        assert set(flows) == {(1, 0, 1)}
        assert_mirrors_naive(allocation)
        popped = flows.pop()
        assert popped == (1, 0, 1)
        allocation.available.update({(0, 0), (1, 1)})
        allocation.available.clear()
        assert_mirrors_naive(allocation)
        assert allocation.fingerprint() == Allocation(CATALOG).fingerprint()

    def test_dict_entry_points(self):
        allocation = Allocation(CATALOG)
        provided = allocation.provided
        provided[0] = 1
        provided[0] = 1  # same value: no fingerprint churn
        fp = allocation.fingerprint()
        provided[0] = 1
        assert allocation.fingerprint() == fp
        provided[0] = 2  # moved provider
        assert allocation.fingerprint() != fp
        provided.update({1: 0, 2: 1})
        assert provided.setdefault(1, 9) == 0
        assert provided.setdefault(3, 2) == 2
        del provided[3]
        assert provided.pop(2) == 1
        assert provided.pop(2, None) is None
        with pytest.raises(KeyError):
            provided.pop(7)
        provided.popitem()
        provided.clear()
        # |= must route through the hooks (dict.__ior__ would bypass them).
        provided |= {0: 1, 1: 0}
        assert allocation.provided_at(1) == frozenset({0})
        assert_mirrors_naive(allocation)
        provided.clear()
        assert allocation.fingerprint() == Allocation(CATALOG).fingerprint()

    def test_symmetric_difference_update_deduplicates_like_builtin(self):
        allocation = Allocation(CATALOG)
        allocation.flows.update({(0, 1, 0), (1, 2, 1)})
        # Builtin sets toggle each *distinct* element once; a duplicate in
        # the iterable must not cancel the toggle.
        allocation.flows.symmetric_difference_update([(0, 2, 2), (0, 2, 2)])
        assert set(allocation.flows) == {(0, 1, 0), (1, 2, 1), (0, 2, 2)}
        assert_mirrors_naive(allocation)

    def test_observed_collections_refuse_pickling(self):
        import pickle

        allocation = Allocation(CATALOG)
        with pytest.raises(TypeError):
            pickle.dumps(allocation.flows)
        with pytest.raises(TypeError):
            pickle.dumps(allocation.provided)


class TestDeltaTouchedSets:
    def test_extractor_covers_every_field(self):
        catalog = CATALOG
        operator_id = OPERATOR_IDS[0]
        output = catalog.get_operator(operator_id).output_stream
        delta = PlacementDelta(
            add_flows={(0, 1, 3)},
            remove_flows={(1, 2, 2)},
            add_available={(2, 1)},
            remove_available={(0, 0)},
            add_placements={(1, operator_id)},
            set_provided={2: 0},
            unset_provided={1},
            admit_queries={QUERY_IDS[0]},
        )
        hosts, streams, operators = delta_touched_sets(delta, catalog)
        assert hosts == {0, 1, 2}
        assert streams == {0, 1, 2, 3, output}
        assert operators == {operator_id}

    def test_apply_then_validate_delta_matches_oracle(self):
        allocation = Allocation(CATALOG)
        operator_id = OPERATOR_IDS[0]
        delta = PlacementDelta(
            add_available={(0, 0), (0, 5)},
            add_placements={(0, operator_id)},
            set_provided={5: 0},
        )
        allocation.apply(delta)
        report = allocation.validate_delta(*delta_touched_sets(delta, CATALOG))
        assert sorted(report) == sorted(allocation.validate())


# --------------------------------------------------------------- federated
def build_federated_catalog():
    """A two-site catalog with a deliberately tight WAN gateway, so random
    mutation sequences routinely overload it (the mirror tests must agree
    on violations, not just on clean states)."""
    catalog = SystemCatalog(
        cost_model=LinearCostModel(seed=1),
        decomposition=DecompositionMode.CANONICAL,
        default_link_capacity=1000.0,
        default_wan_capacity=25.0,
    )
    for i in range(NUM_HOSTS + 1):
        catalog.add_host(
            cpu_capacity=10.0,
            bandwidth_capacity=200.0,
            name=f"h{i}",
            site=i // 2,
        )
    for i in range(NUM_BASE):
        catalog.add_base_stream(f"b{i}", 10.0, i % (NUM_HOSTS + 1))
    catalog.register_query(query_over("b0", "b1"))
    catalog.register_query(query_over("b1", "b2"))
    catalog.register_query(query_over("b2", "b3"))
    return catalog


FED_CATALOG = build_federated_catalog()
FED_HOSTS = list(range(NUM_HOSTS + 1))
FED_SITES = FED_CATALOG.sites


@st.composite
def fed_mutations(draw, max_ops: int = 30):
    """Random raw mutations over the federated catalog's id spaces."""
    ops = []
    stream_ids = sorted(
        set(range(NUM_BASE)) | {q.result_stream for q in FED_CATALOG.queries}
    )
    operator_ids = [op.operator_id for op in FED_CATALOG.operators]
    for _ in range(draw(st.integers(min_value=1, max_value=max_ops))):
        kind = draw(
            st.sampled_from(
                ["add_flow", "remove_flow", "add_place", "remove_place", "copy"]
            )
        )
        if kind in ("add_flow", "remove_flow"):
            src = draw(st.sampled_from(FED_HOSTS))
            dst = draw(st.sampled_from([h for h in FED_HOSTS if h != src]))
            ops.append((kind, (src, dst, draw(st.sampled_from(stream_ids)))))
        elif kind in ("add_place", "remove_place"):
            ops.append(
                (
                    kind,
                    (
                        draw(st.sampled_from(FED_HOSTS)),
                        draw(st.sampled_from(operator_ids)),
                    ),
                )
            )
        else:
            ops.append((kind, None))
    return ops


class TestFederatedAggregateMirror:
    """Hypothesis mirrors pinning the per-site aggregates to naive
    recomputation, matching the PR 4 index-mirror pattern."""

    @given(ops=fed_mutations())
    @common_settings
    def test_site_aggregates_equal_naive_recomputation(self, ops):
        allocation = Allocation(FED_CATALOG)
        for op in ops:
            allocation = apply_mutation(allocation, op)
        for site in FED_SITES:
            assert allocation.site_cpu_used(site) == pytest.approx(
                allocation.site_cpu_used_scan(site), **APPROX
            )
            for other in FED_SITES:
                assert allocation.wan_used(site, other) == pytest.approx(
                    allocation.wan_used_scan(site, other), **APPROX
                )
        # wan_usage() lists exactly the pairs with live crossings.
        naive_pairs = {
            (FED_CATALOG.site_of_host(src), FED_CATALOG.site_of_host(dst))
            for (src, dst, _s) in allocation.flows
            if FED_CATALOG.site_of_host(src) != FED_CATALOG.site_of_host(dst)
        }
        assert set(allocation.wan_usage()) == naive_pairs
        # Excluded-scan parity, mirroring the link_used exclusion contract.
        exclude = set(
            sorted({s for (_h, _m, s) in allocation.flows})[::2]
        )
        for site in FED_SITES:
            for other in FED_SITES:
                assert allocation.wan_used(site, other, exclude) == pytest.approx(
                    allocation.wan_used_scan(site, other)
                    - sum(
                        FED_CATALOG.stream_rate(s)
                        for (src, dst, s) in allocation.flows
                        if s in exclude
                        and FED_CATALOG.site_of_host(src) == site
                        and FED_CATALOG.site_of_host(dst) == other
                        and site != other
                    ),
                    **APPROX,
                )

    @given(ops=fed_mutations())
    @common_settings
    def test_wan_and_liveness_delta_equals_oracle(self, ops):
        """validate_delta over everything touched reports exactly the WAN /
        site-liveness violations the full oracle reports — including under
        a partition."""
        allocation = Allocation(FED_CATALOG)
        touched_hosts, touched_streams, touched_operators = set(), set(), set()
        for op in ops:
            allocation = apply_mutation(allocation, op)
            hosts, streams, operators = allocation.drain_touched()
            touched_hosts |= hosts
            touched_streams |= streams
            touched_operators |= operators
        delta_report = allocation.validate_delta(
            touched_hosts, touched_streams, touched_operators
        )
        assert sorted(delta_report) == sorted(allocation.validate())
        FED_CATALOG.partition_site(FED_SITES[-1])
        try:
            partition_report = allocation.validate_delta(set(FED_HOSTS))
            assert sorted(partition_report) == sorted(allocation.validate())
        finally:
            FED_CATALOG.heal_site(FED_SITES[-1])
