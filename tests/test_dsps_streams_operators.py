"""Tests for streams, operators, hosts and the network topology."""

from __future__ import annotations

import pytest

from repro.dsps.hosts import Host, HostSet
from repro.dsps.network import NetworkTopology
from repro.dsps.operators import Operator, OperatorKind, make_join_operator
from repro.dsps.stream import StreamKind, StreamRegistry
from repro.exceptions import CatalogError


class TestStreamRegistry:
    def test_base_stream_registration(self):
        registry = StreamRegistry()
        stream = registry.add_base_stream("b0", 10.0)
        assert stream.is_base
        assert stream.base_set == frozenset({stream.stream_id})
        assert registry.get(stream.stream_id) is stream
        assert registry.get_by_name("b0") is stream

    def test_duplicate_base_name_rejected(self):
        registry = StreamRegistry()
        registry.add_base_stream("b0", 10.0)
        with pytest.raises(CatalogError):
            registry.add_base_stream("b0", 5.0)

    def test_composite_stream_equivalence(self):
        registry = StreamRegistry()
        a = registry.add_base_stream("a", 10.0)
        b = registry.add_base_stream("b", 10.0)
        first = registry.add_composite_stream("join", {a.stream_id, b.stream_id}, 4.0)
        second = registry.add_composite_stream("join", {b.stream_id, a.stream_id}, 4.0)
        assert first is second
        assert len(registry.composite_streams) == 1

    def test_composite_requires_known_base(self):
        registry = StreamRegistry()
        registry.add_base_stream("a", 10.0)
        with pytest.raises(CatalogError):
            registry.add_composite_stream("join", {99}, 4.0)

    def test_find_equivalent(self):
        registry = StreamRegistry()
        a = registry.add_base_stream("a", 10.0)
        b = registry.add_base_stream("b", 10.0)
        assert registry.find_equivalent("join", {a.stream_id, b.stream_id}) is None
        stream = registry.add_composite_stream("join", {a.stream_id, b.stream_id}, 4.0)
        assert registry.find_equivalent("join", {b.stream_id, a.stream_id}) is stream

    def test_negative_rate_rejected(self):
        registry = StreamRegistry()
        with pytest.raises(ValueError):
            registry.add_base_stream("a", -1.0)

    def test_iteration_and_len(self):
        registry = StreamRegistry()
        registry.add_base_stream("a", 1.0)
        registry.add_base_stream("b", 1.0)
        assert len(registry) == 2
        assert [s.name for s in registry] == ["a", "b"]


class TestOperators:
    def test_join_operator_construction(self):
        op = make_join_operator(0, [1, 2], 3, 0.5)
        assert op.kind is OperatorKind.JOIN
        assert op.arity == 2
        assert not op.is_relay

    def test_join_needs_two_inputs(self):
        with pytest.raises(CatalogError):
            make_join_operator(0, [1], 3, 0.5)

    def test_output_must_differ_from_inputs(self):
        with pytest.raises(CatalogError):
            Operator(0, "bad", OperatorKind.JOIN, frozenset({1, 2}), 2, 0.5)

    def test_signature_identity(self):
        a = make_join_operator(0, [1, 2], 3, 0.5)
        b = make_join_operator(7, [2, 1], 3, 0.9)
        assert a.signature() == b.signature()


class TestHostsAndNetwork:
    def test_host_set_registration(self):
        hosts = HostSet()
        h = hosts.add("h0", 4.0, 100.0)
        assert isinstance(h, Host)
        assert hosts.get(0) is h
        assert hosts.get_by_name("h0") is h
        assert hosts.ids == [0]

    def test_duplicate_host_name_rejected(self):
        hosts = HostSet()
        hosts.add("h0", 4.0, 100.0)
        with pytest.raises(CatalogError):
            hosts.add("h0", 4.0, 100.0)

    def test_host_capacities_validated(self):
        with pytest.raises(ValueError):
            Host(0, "h", cpu_capacity=0.0, bandwidth_capacity=10.0)

    def test_topology_defaults_and_overrides(self):
        topo = NetworkTopology(3, 100.0)
        assert topo.capacity(0, 1) == 100.0
        assert topo.capacity(1, 1) == 0.0
        topo.set_capacity(0, 1, 10.0)
        assert topo.capacity(0, 1) == 10.0
        assert topo.capacity(1, 0) == 10.0

    def test_topology_asymmetric_override(self):
        topo = NetworkTopology(2, 100.0)
        topo.set_capacity(0, 1, 10.0, symmetric=False)
        assert topo.capacity(0, 1) == 10.0
        assert topo.capacity(1, 0) == 100.0

    def test_topology_scaling(self):
        topo = NetworkTopology(2, 100.0)
        topo.set_capacity(0, 1, 10.0)
        scaled = topo.scaled(10.0)
        assert scaled.capacity(0, 1) == 100.0
        assert scaled.default_capacity == 1000.0

    def test_topology_rejects_unknown_hosts(self):
        topo = NetworkTopology(2, 100.0)
        with pytest.raises(CatalogError):
            topo.capacity(0, 5)

    def test_pairs_enumeration(self):
        topo = NetworkTopology(3, 1.0)
        assert len(list(topo.pairs())) == 6
