"""Tests for the allocation state, query-plan trees and plan extraction."""

from __future__ import annotations

import pytest

from repro.dsps.allocation import Allocation, PlacementDelta
from repro.dsps.plan import PlanNode, QueryPlan, extract_plan, rebuild_minimal_allocation
from repro.exceptions import PlanError
from tests.conftest import make_catalog, query_over


@pytest.fixture
def planted_catalog():
    """A catalog with one registered 2-way join query (b0 ⋈ b1)."""
    catalog = make_catalog(num_hosts=3, num_base=3)
    query = catalog.register_query(query_over("b0", "b1"))
    return catalog, query


def manual_allocation(catalog, query, host=0):
    """Manually place the whole query on ``host`` (pulling b1 from host 1)."""
    operator = catalog.producers_of(query.result_stream)[0]
    allocation = Allocation(catalog)
    allocation.available.add((1, 1))
    allocation.flows.add((1, host, 1))
    allocation.available.add((host, 0))
    allocation.available.add((host, 1))
    allocation.placements.add((host, operator.operator_id))
    allocation.available.add((host, query.result_stream))
    allocation.provided[query.result_stream] = host
    allocation.admitted_queries.add(query.query_id)
    return allocation, operator


class TestAllocationAccounting:
    def test_resource_usage(self, planted_catalog):
        catalog, query = planted_catalog
        allocation, operator = manual_allocation(catalog, query)
        assert allocation.cpu_used(0) == pytest.approx(operator.cpu_cost)
        assert allocation.cpu_used(1) == 0.0
        # Host 1 sends b1 (10 Mbps); host 0 delivers the result to the client.
        assert allocation.out_bandwidth_used(1) == pytest.approx(10.0)
        result_rate = catalog.stream_rate(query.result_stream)
        assert allocation.out_bandwidth_used(0) == pytest.approx(result_rate)
        assert allocation.in_bandwidth_used(0) == pytest.approx(10.0)
        assert allocation.link_used(1, 0) == pytest.approx(10.0)

    def test_exclusion_sets(self, planted_catalog):
        catalog, query = planted_catalog
        allocation, operator = manual_allocation(catalog, query)
        assert allocation.cpu_used(0, exclude_operators={operator.operator_id}) == 0.0
        assert allocation.out_bandwidth_used(1, exclude_streams={1}) == 0.0

    def test_objective_helpers(self, planted_catalog):
        catalog, query = planted_catalog
        allocation, operator = manual_allocation(catalog, query)
        assert allocation.total_cpu_used() == pytest.approx(operator.cpu_cost)
        assert allocation.max_cpu_used() == pytest.approx(operator.cpu_cost)
        assert allocation.total_network_used() == pytest.approx(10.0)

    def test_validate_clean_allocation(self, planted_catalog):
        catalog, query = planted_catalog
        allocation, _ = manual_allocation(catalog, query)
        assert allocation.validate() == []
        assert allocation.is_feasible()

    def test_validate_detects_missing_source(self, planted_catalog):
        catalog, query = planted_catalog
        allocation, _ = manual_allocation(catalog, query)
        allocation.available.add((2, query.result_stream))  # no source at host 2
        assert any("availability" in v for v in allocation.validate())

    def test_validate_detects_missing_operator_input(self, planted_catalog):
        catalog, query = planted_catalog
        allocation, operator = manual_allocation(catalog, query)
        allocation.available.discard((0, 1))
        assert any("misses input" in v for v in allocation.validate())

    def test_validate_detects_cpu_overload(self):
        # A host with almost no CPU cannot run even a single join operator.
        big = make_catalog(num_hosts=1, cpu=0.1, num_base=2)
        q = big.register_query(query_over("b0", "b1"))
        op = big.producers_of(q.result_stream)[0]
        alloc = Allocation(big)
        alloc.available.add((0, 0))
        alloc.available.add((0, 1))
        alloc.placements.add((0, op.operator_id))
        assert any("CPU overload" in v for v in alloc.validate())

    def test_validate_detects_unrequested_provided(self, planted_catalog):
        catalog, query = planted_catalog
        allocation, _ = manual_allocation(catalog, query)
        allocation.provided[0] = 0  # base stream b0 was never requested
        assert any("not requested" in v for v in allocation.validate())

    def test_validate_detects_causal_loop(self, planted_catalog):
        catalog, query = planted_catalog
        allocation, _ = manual_allocation(catalog, query)
        s = query.result_stream
        # Hosts 1 and 2 exchange the composite stream without any producer.
        allocation.available.add((1, s))
        allocation.available.add((2, s))
        allocation.flows.add((1, 2, s))
        allocation.flows.add((2, 1, s))
        assert any("acyclicity" in v or "availability" in v for v in allocation.validate())

    def test_apply_delta_and_copy_independence(self, planted_catalog):
        catalog, query = planted_catalog
        allocation, operator = manual_allocation(catalog, query)
        clone = allocation.copy()
        delta = PlacementDelta(remove_placements={(0, operator.operator_id)})
        allocation.apply(delta)
        assert not allocation.has_placement(0, operator.operator_id)
        assert clone.has_placement(0, operator.operator_id)

    def test_delta_is_empty(self):
        assert PlacementDelta().is_empty()
        assert not PlacementDelta(admit_queries={1}).is_empty()

    def test_lookup_helpers(self, planted_catalog):
        catalog, query = planted_catalog
        allocation, operator = manual_allocation(catalog, query)
        assert allocation.provider_of(query.result_stream) == 0
        assert allocation.hosts_with_stream(1) == frozenset({0, 1})
        assert allocation.hosts_of_operator(operator.operator_id) == frozenset({0})
        assert allocation.flow_sources(0, 1) == [1]
        assert allocation.operators_on(0) == frozenset({operator.operator_id})


class TestPlanValidationAndExtraction:
    def test_extract_plan_round_trip(self, planted_catalog):
        catalog, query = planted_catalog
        allocation, operator = manual_allocation(catalog, query)
        plan = extract_plan(catalog, allocation, query.result_stream)
        assert plan.is_valid(catalog)
        assert plan.root.host == 0
        assert operator.operator_id in plan.operators_used()
        assert plan.num_relays() >= 1  # b1 relayed from host 1
        assert plan.total_cpu(catalog) == pytest.approx(operator.cpu_cost)
        assert plan.network_traffic(catalog) == pytest.approx(10.0)

    def test_extract_plan_requires_provider(self, planted_catalog):
        catalog, query = planted_catalog
        allocation = Allocation(catalog)
        with pytest.raises(PlanError):
            extract_plan(catalog, allocation, query.result_stream)

    def test_c1_violation_detected(self, planted_catalog):
        catalog, query = planted_catalog
        node = PlanNode(host=0, operator_id=None, output_stream=0, local_inputs=frozenset({0}))
        plan = QueryPlan(query_stream=query.result_stream, root=node)
        assert any(v.startswith("C1") for v in plan.validate(catalog))

    def test_c2_violation_detected(self, planted_catalog):
        catalog, query = planted_catalog
        operator = catalog.producers_of(query.result_stream)[0]
        node = PlanNode(
            host=0,
            operator_id=operator.operator_id,
            output_stream=query.result_stream,
            children=[],
            local_inputs=frozenset({0}),  # missing b1
        )
        plan = QueryPlan(query_stream=query.result_stream, root=node)
        assert any(v.startswith("C2") for v in plan.validate(catalog))

    def test_c3_violation_detected(self, planted_catalog):
        catalog, query = planted_catalog
        relay = PlanNode(host=0, operator_id=None, output_stream=1, local_inputs=frozenset())
        plan = QueryPlan(query_stream=1, root=relay)
        assert any(v.startswith("C3") for v in plan.validate(catalog))

    def test_c4_violation_detected(self, planted_catalog):
        catalog, query = planted_catalog
        # Base stream b1 is injected at host 1, not host 2.
        node = PlanNode(host=2, operator_id=None, output_stream=1, local_inputs=frozenset({1}))
        plan = QueryPlan(query_stream=1, root=node)
        assert any(v.startswith("C4") for v in plan.validate(catalog))

    def test_rebuild_minimal_allocation_drops_garbage(self, planted_catalog):
        catalog, query = planted_catalog
        allocation, operator = manual_allocation(catalog, query)
        # Add garbage: a redundant placement and an unused flow.
        allocation.placements.add((2, operator.operator_id))
        allocation.available.add((2, 0))
        allocation.available.add((2, 1))
        allocation.flows.add((1, 2, 1))
        rebuilt = rebuild_minimal_allocation(catalog, allocation)
        assert rebuilt.validate() == []
        assert rebuilt.admitted_queries == {query.query_id}
        assert not rebuilt.has_placement(2, operator.operator_id)
        assert rebuilt.total_cpu_used() <= allocation.total_cpu_used()
