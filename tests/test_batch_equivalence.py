"""Batch admission equivalence: batching must never change results.

The admission service's whole premise is that coalescing co-arriving
queries into one ``submit_batch`` call is a throughput optimisation, not
a semantic change.  This module pins that property for every registry
planner, on batches of *non-overlapping* queries (disjoint base
streams, so no sharing ties the sub-problems together):

* decisions (admit/reject per query, in order) match sequential
  submission for all four planners, and
* the final allocation fingerprint matches exactly.  For the three
  planners whose batch path is the sequential loop this is trivial; for
  SQPR — which builds one *joint* model per batch — it holds when the
  objective is separable across the batch (load-balancing weight 0).
  With the coupling balance term the joint optimum may legitimately
  differ (it can beat one-at-a-time greedy placement), which is asserted
  too: batching never admits fewer queries.
"""

from __future__ import annotations

import pytest

from repro.api import PlannerConfig, create_planner
from repro.core.weights import ObjectiveWeights
from repro.dsps.catalog import SystemCatalog
from repro.dsps.cost_model import LinearCostModel
from repro.dsps.query import DecompositionMode, QueryWorkloadItem

ALL_PLANNERS = ("sqpr", "heuristic", "soda", "optimistic")
NUM_PAIRS = 4


def separable_catalog(seed: int, cpu: float = 20.0) -> SystemCatalog:
    """One host per query, both of a query's sources co-located on it.

    Non-overlapping queries over such a catalog decompose into
    independent sub-problems with strictly dominant local placements, so
    any exact planner must reach the same unique optimum whether it
    plans them jointly or one at a time.
    """
    catalog = SystemCatalog(
        cost_model=LinearCostModel(seed=seed),
        decomposition=DecompositionMode.CANONICAL,
        default_link_capacity=1000.0,
    )
    for index in range(NUM_PAIRS):
        catalog.add_host(
            cpu_capacity=cpu, bandwidth_capacity=200.0, name=f"h{index}"
        )
    for index in range(NUM_PAIRS):
        catalog.add_base_stream(f"s{2 * index}", 8.0 + index, index)
        catalog.add_base_stream(f"s{2 * index + 1}", 6.0 + index, index)
    return catalog


def disjoint_items():
    return [
        QueryWorkloadItem(base_names=(f"s{2 * i}", f"s{2 * i + 1}"))
        for i in range(NUM_PAIRS)
    ]


def build_planner(name: str, catalog: SystemCatalog, separable: bool):
    kwargs = {}
    if name == "sqpr" and separable:
        # λ4 = 0 makes the joint objective a sum over the batch members.
        kwargs["weights"] = ObjectiveWeights.paper_default(
            catalog, load_balancing=0.0
        )
    return create_planner(
        name, catalog, config=PlannerConfig(time_limit=None), **kwargs
    )


def run_mode(name: str, seed: int, batched: bool, separable: bool = True):
    catalog = separable_catalog(seed)
    planner = build_planner(name, catalog, separable)
    items = disjoint_items()
    if batched:
        outcomes = planner.submit_batch(items)
    else:
        outcomes = [planner.submit(item) for item in items]
    decisions = [outcome.admitted for outcome in outcomes]
    fingerprint = (
        planner.allocation.fingerprint()
        if planner.allocation is not None
        else None
    )
    return decisions, fingerprint


class TestBatchEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("name", ALL_PLANNERS)
    def test_batch_matches_sequential(self, name, seed):
        sequential = run_mode(name, seed, batched=False)
        batched = run_mode(name, seed, batched=True)
        assert batched[0] == sequential[0], "admission decisions diverged"
        assert batched[1] == sequential[1], "allocation fingerprint diverged"

    @pytest.mark.parametrize("name", ALL_PLANNERS)
    def test_batch_is_deterministic(self, name):
        first = run_mode(name, seed=5, batched=True)
        second = run_mode(name, seed=5, batched=True)
        assert first == second

    @pytest.mark.parametrize("seed", [1, 2, 3, 7])
    def test_sqpr_joint_batching_never_admits_fewer(self, seed):
        """With the coupling balance term the joint model may place
        differently than greedy one-at-a-time admission — but only ever
        equal-or-better, never dropping an admission."""
        sequential = run_mode("sqpr", seed, batched=False, separable=False)
        batched = run_mode("sqpr", seed, batched=True, separable=False)
        assert sum(batched[0]) >= sum(sequential[0])

    def test_batch_with_identical_queries_matches_sequential(self):
        """Identical queries in one batch share their structures in the
        joint model; sequentially the second is a duplicate fast-path.
        Either way both are admitted onto the same allocation."""
        catalog = separable_catalog(seed=9)
        planner = build_planner("sqpr", catalog, separable=True)
        twin = QueryWorkloadItem(base_names=("s0", "s1"))
        outcomes = planner.submit_batch([twin, twin])
        assert [o.admitted for o in outcomes] == [True, True]

        sequential_catalog = separable_catalog(seed=9)
        sequential_planner = build_planner(
            "sqpr", sequential_catalog, separable=True
        )
        first = sequential_planner.submit(twin)
        second = sequential_planner.submit(twin)
        assert first.admitted and second.admitted
        assert second.duplicate  # provided stream, no planning round
        assert (
            planner.allocation.fingerprint()
            == sequential_planner.allocation.fingerprint()
        )

    def test_already_provided_stream_is_a_duplicate_inside_a_batch(self):
        catalog = separable_catalog(seed=9)
        planner = build_planner("sqpr", catalog, separable=True)
        twin = QueryWorkloadItem(base_names=("s0", "s1"))
        assert planner.submit(twin).admitted
        outcomes = planner.submit_batch([twin])
        assert outcomes[0].admitted and outcomes[0].duplicate
