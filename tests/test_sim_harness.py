"""Tests for the discrete-event churn simulation harness and its substrate:
query retirement, host lifecycle, schedule generation and the determinism
contract (same seed => identical results, for all four registry planners)."""

from __future__ import annotations

import pytest

from repro.api import PlannerConfig, available_planners, create_planner
from repro.dsps.engine import ClusterEngine
from repro.dsps.query import DecompositionMode, QueryWorkloadItem
from repro.exceptions import CatalogError, SimulationError
from repro.sim import (
    EventSchedule,
    HostFailure,
    QueryArrival,
    QueryDeparture,
    SimulationHarness,
    merge_schedules,
)
from repro.workloads.churn import (
    CHURN_SCENARIOS,
    ChurnTraceConfig,
    build_churn_schedule,
    build_named_churn_schedule,
)
from repro.workloads.scenarios import (
    SimulationScenarioConfig,
    build_simulation_scenario,
)
from tests.conftest import make_catalog, query_over


def churn_scenario(seed: int = 3):
    """A tiny scenario on which every planner (including SQPR at full
    optimality) simulates a schedule in well under a second."""
    return build_simulation_scenario(
        SimulationScenarioConfig(
            num_hosts=3,
            num_base_streams=8,
            host_cpu_capacity=5.0,
            host_bandwidth=150.0,
            decomposition=DecompositionMode.CANONICAL,
            seed=seed,
        )
    )


def full_churn_config(seed: int = 5) -> ChurnTraceConfig:
    """Arrivals + departures + a host failure/recovery + drift + replanning."""
    return ChurnTraceConfig(
        duration=40.0,
        arrival_rate=0.4,
        arities=(2,),
        num_host_failures=1,
        recovery_delay=12.0,
        drift_period=9.0,
        drift_factor=2.5,
        replan_period=13.0,
        seed=seed,
    )


# --------------------------------------------------------------------- retire
class TestRetire:
    def test_retire_removes_query_and_garbage_collects(self, tiny_planner):
        q1 = tiny_planner.submit(query_over("b0", "b1"))
        q2 = tiny_planner.submit(query_over("b2", "b3"))
        assert q1.admitted and q2.admitted
        before = len(tiny_planner.allocation.placements)

        assert tiny_planner.retire(q1.query.query_id) is True
        allocation = tiny_planner.allocation
        assert q1.query.query_id not in allocation.admitted_queries
        assert q2.query.query_id in allocation.admitted_queries
        # The retired query's structures are gone (allocation shrank) and
        # what survives is still feasible.
        assert len(allocation.placements) < before
        assert allocation.validate() == []
        assert not allocation.is_provided(q1.query.result_stream)
        assert allocation.is_provided(q2.query.result_stream)

    def test_retire_is_idempotent_and_reject_safe(self, tiny_planner):
        outcome = tiny_planner.submit(query_over("b0", "b1"))
        qid = outcome.query.query_id
        assert tiny_planner.retire(qid) is True
        assert tiny_planner.retire(qid) is False
        assert tiny_planner.retire(999) is False

    def test_retire_keeps_shared_result_stream(self, tiny_planner):
        # Two identical queries: the second is a duplicate admission.  The
        # result stream must stay provided until *both* are gone.
        q1 = tiny_planner.submit(query_over("b0", "b1"))
        q2 = tiny_planner.submit(query_over("b0", "b1"))
        assert q2.duplicate
        stream = q1.query.result_stream
        assert tiny_planner.retire(q1.query.query_id)
        assert tiny_planner.allocation.is_provided(stream)
        assert tiny_planner.retire(q2.query.query_id)
        assert not tiny_planner.allocation.is_provided(stream)

    @pytest.mark.parametrize("name", sorted(available_planners()))
    def test_every_registry_planner_supports_retire(self, name):
        catalog = make_catalog(num_hosts=3, cpu=8.0, num_base=4)
        planner = create_planner(name, catalog, config=PlannerConfig(time_limit=1.0))
        outcome = planner.submit(query_over("b0", "b1"))
        assert outcome.admitted
        qid = outcome.query.query_id
        assert qid in planner.active_queries
        assert planner.retire(qid) is True
        assert qid not in planner.active_queries
        assert planner.retire(qid) is False

    def test_optimistic_retire_equals_replay(self):
        catalog = make_catalog(num_hosts=2, cpu=3.0, num_base=4)
        planner = create_planner("optimistic", catalog)
        outcomes = [
            planner.submit(query_over("b0", "b1")),
            planner.submit(query_over("b1", "b2")),
            planner.submit(query_over("b2", "b3")),
        ]
        victim = outcomes[1].query.query_id
        planner.retire(victim)

        replayed = create_planner("optimistic", catalog)
        for outcome in outcomes:
            if outcome.query.query_id != victim:
                replayed.submit(outcome.query)
        assert planner.active_queries == replayed.active_queries
        assert planner.cpu_used == pytest.approx(replayed.cpu_used)


# -------------------------------------------------------------- host lifecycle
class TestHostLifecycle:
    def test_fail_host_hides_it_from_planners(self):
        catalog = make_catalog(num_hosts=3, cpu=8.0, num_base=4)
        assert catalog.host_ids == [0, 1, 2]
        catalog.deactivate_host(1)
        assert catalog.host_ids == [0, 2]
        assert not catalog.is_host_active(1)
        # Base streams injected at the failed host disappear...
        assert all(1 not in catalog.base_hosts_of(s)
                   for s in [s.stream_id for s in catalog.streams.base_streams])
        catalog.activate_host(1)
        assert catalog.host_ids == [0, 1, 2]

    def test_fail_host_evicts_victims_and_revalidates(self, tiny_planner):
        outcomes = [
            tiny_planner.submit(query_over("b0", "b1")),
            tiny_planner.submit(query_over("b2", "b3")),
        ]
        assert all(o.admitted for o in outcomes)
        engine = ClusterEngine(tiny_planner.catalog)
        engine.adopt(tiny_planner.allocation)

        used_hosts = {h for (h, _o) in engine.allocation.placements}
        victim_host = sorted(used_hosts)[0]
        report = engine.fail_host(victim_host)
        assert report.clean
        assert report.victims  # something ran there
        # Nothing in the surviving allocation references the dead host.
        assert all(h != victim_host for (h, _o) in engine.allocation.placements)
        assert all(
            victim_host not in (src, dst)
            for (src, dst, _s) in engine.allocation.flows
        )
        assert engine.allocation.validate() == []

    def test_fail_host_drops_stale_structures_without_victims(self):
        # Redundant residue on a host no plan uses (e.g. left by a timed-out
        # incumbent with garbage collection disabled) must not survive that
        # host's failure as a liveness violation.
        from repro.dsps.plan import extract_plan

        # b0 and b3 are both injected at host 0 (round-robin over 3 hosts),
        # so the heuristic plans the whole query there, leaving idle hosts.
        catalog = make_catalog(num_hosts=3, num_base=4)
        planner = create_planner("heuristic", catalog)
        outcome = planner.submit(query_over("b0", "b3"))
        assert outcome.admitted
        engine = ClusterEngine(catalog, strict=False)
        engine.adopt(planner.allocation)
        plan = extract_plan(catalog, engine.allocation, outcome.query.result_stream)
        idle_host = next(h for h in catalog.host_ids if h not in plan.hosts_used())
        stale_stream = outcome.query.result_stream
        engine.allocation.available.add((idle_host, stale_stream))

        report = engine.fail_host(idle_host)
        assert report.victims == []
        assert report.clean
        assert (idle_host, stale_stream) not in engine.allocation.available

    def test_fail_host_twice_raises(self):
        catalog = make_catalog()
        engine = ClusterEngine(catalog)
        engine.fail_host(0)
        with pytest.raises(CatalogError):
            engine.fail_host(0)
        engine.restore_host(0)
        with pytest.raises(CatalogError):
            engine.restore_host(0)

    def test_offline_host_structures_are_violations(self, tiny_catalog):
        planner = create_planner("heuristic", tiny_catalog)
        outcome = planner.submit(query_over("b0", "b1"))
        assert outcome.admitted
        allocation = planner.allocation
        host = next(iter({h for (h, _o) in allocation.placements}))
        tiny_catalog.deactivate_host(host)
        violations = allocation.validate()
        assert any("liveness" in v for v in violations)
        tiny_catalog.activate_host(host)
        assert allocation.validate() == []

    def test_optimistic_topology_change_shrinks_capacity(self):
        catalog = make_catalog(num_hosts=2, cpu=2.0, num_base=4)
        planner = create_planner("optimistic", catalog)
        planner.submit(query_over("b0", "b1"))
        planner.submit(query_over("b2", "b3"))
        assert planner.cpu_capacity == pytest.approx(4.0)
        catalog.deactivate_host(1)
        dropped = planner.on_topology_change()
        assert planner.cpu_capacity == pytest.approx(2.0)
        assert planner.cpu_used <= planner.cpu_capacity + 1e-9
        # Whatever was dropped is consistent with the active view.
        assert set(dropped) & planner.active_queries == set()

    def test_engine_reset_clears_drift_and_offline_hosts(self):
        catalog = make_catalog()
        engine = ClusterEngine(catalog)
        planner = create_planner("heuristic", catalog)
        outcome = planner.submit(query_over("b0", "b1"))
        operator_id = next(o for (_h, o) in planner.allocation.placements)
        engine.monitor.set_operator_drift(operator_id, 5.0)
        engine.fail_host(0)
        engine.reset()
        assert engine.monitor.drift_of(operator_id) == 1.0
        assert catalog.host_ids == [0, 1, 2]
        assert len(engine.allocation.admitted_queries) == 0


# ------------------------------------------------------------------- schedules
class TestSchedules:
    def test_schedule_generation_is_deterministic(self):
        scenario = churn_scenario()
        config = full_churn_config()
        first = build_churn_schedule(scenario, config)
        second = build_churn_schedule(scenario, config)
        assert first.events == second.events
        assert first.num_arrivals > 0
        counts = first.counts_by_kind()
        assert counts["HostFailure"] == 1
        assert counts.get("LoadDrift", 0) > 0
        assert counts.get("ReplanTick", 0) > 0
        assert counts.get("QueryDeparture", 0) > 0

    def test_schedule_validation(self):
        item = QueryWorkloadItem(base_names=("b0", "b1"))
        with pytest.raises(SimulationError):
            EventSchedule(
                events=[
                    QueryArrival(time=2.0, item=item, arrival_index=0),
                    QueryArrival(time=1.0, item=item, arrival_index=1),
                ]
            )
        with pytest.raises(SimulationError):
            EventSchedule(events=[QueryDeparture(time=1.0, arrival_index=5)])
        # A departure scheduled before its own arrival is invalid too.
        with pytest.raises(SimulationError):
            EventSchedule(
                events=[
                    QueryDeparture(time=1.0, arrival_index=0),
                    QueryArrival(time=2.0, item=item, arrival_index=0),
                ]
            )

    def test_named_scenarios_build(self):
        scenario = churn_scenario()
        assert len(CHURN_SCENARIOS) >= 4
        for name in CHURN_SCENARIOS:
            schedule = build_named_churn_schedule(name, scenario)
            assert len(schedule) > 0
            assert schedule.num_arrivals > 0

    def test_flash_crowd_bursts(self):
        scenario = churn_scenario()
        schedule = build_named_churn_schedule("flash_crowd", scenario)
        duration = schedule.duration
        thirds = [0, 0, 0]
        for event in schedule:
            if isinstance(event, QueryArrival):
                thirds[min(2, int(3 * event.time / duration))] += 1
        assert thirds[1] > thirds[0]
        assert thirds[1] > thirds[2]

    def test_merge_schedules_reindexes_arrivals(self):
        item = QueryWorkloadItem(base_names=("b0", "b1"))
        left = EventSchedule(
            events=[
                QueryArrival(time=1.0, item=item, arrival_index=0),
                QueryDeparture(time=5.0, arrival_index=0),
            ],
            seed=1,
            duration=10.0,
        )
        right = EventSchedule(
            events=[
                QueryArrival(time=0.5, item=item, arrival_index=0),
                HostFailure(time=2.0, host=0),
            ],
            seed=2,
            duration=10.0,
        )
        merged = merge_schedules(left, right)
        assert merged.num_arrivals == 2
        arrivals = [e for e in merged if isinstance(e, QueryArrival)]
        assert [a.arrival_index for a in arrivals] == [0, 1]
        assert arrivals[0].time == 0.5  # right's arrival is first in time
        departures = [e for e in merged if isinstance(e, QueryDeparture)]
        assert departures[0].arrival_index == 1  # re-pointed to left's arrival

    def test_unknown_named_scenario(self):
        from repro.exceptions import WorkloadError

        with pytest.raises(WorkloadError):
            build_named_churn_schedule("nope", churn_scenario())


# --------------------------------------------------------------------- harness
class TestHarness:
    def test_departures_shrink_active_set(self):
        scenario = churn_scenario()
        config = ChurnTraceConfig(
            duration=40.0, arrival_rate=0.4, arities=(2,), seed=9
        )
        schedule = build_churn_schedule(scenario, config)
        planner = create_planner(
            "heuristic", scenario.build_catalog(), config=PlannerConfig()
        )
        result = SimulationHarness(planner).run(schedule)
        counters = result.counters
        assert counters["arrivals"] == schedule.num_arrivals
        assert counters["admitted"] + counters["rejected"] == counters["arrivals"]
        assert counters["departures"] > 0
        assert result.final_active == (
            counters["admitted"] - counters["departures"] - counters["dropped"]
        )
        assert result.final_violations == []
        assert len(planner.active_queries) == result.final_active

    def test_full_churn_all_planners_deterministic(self):
        """Acceptance criterion: a seeded simulation with arrivals,
        departures, a host failure and drift-triggered replanning completes
        for all four planners with identical results across two runs."""
        scenario = churn_scenario()
        schedule = build_churn_schedule(scenario, full_churn_config())
        for name in sorted(available_planners()):
            fingerprints = []
            for _run in range(2):
                planner = create_planner(
                    name,
                    scenario.build_catalog(),
                    config=PlannerConfig(time_limit=None),
                )
                result = SimulationHarness(planner).run(schedule)
                assert result.final_violations == []
                fingerprints.append(result.fingerprint())
            assert fingerprints[0] == fingerprints[1], name

    def test_host_failure_evicts_and_readmits(self):
        scenario = churn_scenario()
        schedule = build_churn_schedule(scenario, full_churn_config())
        planner = create_planner(
            "heuristic", scenario.build_catalog(), config=PlannerConfig()
        )
        result = SimulationHarness(planner).run(schedule)
        assert result.counters["host_failures"] == 1
        assert result.counters["host_recoveries"] == 1
        # Every re-admission pairs an eviction, and the net dropped count
        # can never go negative.
        assert 0 <= result.counters["readmitted"] <= result.counters["evicted"]
        assert result.counters["dropped"] >= 0

    def test_drift_triggers_replan_rounds(self):
        scenario = churn_scenario()
        config = ChurnTraceConfig(
            duration=40.0,
            arrival_rate=0.4,
            arities=(2,),
            drift_period=8.0,
            drift_factor=3.0,
            replan_period=10.0,
            seed=11,
        )
        schedule = build_churn_schedule(scenario, config)
        planner = create_planner(
            "heuristic", scenario.build_catalog(), config=PlannerConfig()
        )
        harness = SimulationHarness(planner, drift_threshold=0.2)
        result = harness.run(schedule)
        assert result.counters["drift_events"] > 0
        assert result.counters["replan_ticks"] > 0
        assert result.counters["replan_rounds"] > 0

    def test_ticks_record_trajectory(self):
        scenario = churn_scenario()
        schedule = build_churn_schedule(
            scenario, ChurnTraceConfig(duration=30.0, arrival_rate=0.4, seed=2)
        )
        planner = create_planner("heuristic", scenario.build_catalog())
        result = SimulationHarness(planner, record_every=3).run(schedule)
        assert result.ticks
        times = [t.time for t in result.ticks]
        assert times == sorted(times)
        assert result.ticks[-1].submitted == result.counters["arrivals"]
        payload = result.to_json_dict()
        assert payload["planner"] == "heuristic"
        assert payload["counters"]["arrivals"] == result.counters["arrivals"]

    def test_mismatched_catalog_rejected(self):
        scenario = churn_scenario()
        planner = create_planner("heuristic", scenario.build_catalog())
        other_engine = ClusterEngine(scenario.build_catalog())
        with pytest.raises(SimulationError):
            SimulationHarness(planner, engine=other_engine)

    def test_warm_started_planner_keeps_dropped_counter_non_negative(self):
        # Queries admitted *before* run() are unknown to the harness's
        # active map; their eviction/readmission on a host failure must not
        # drive the cumulative dropped counter negative.
        scenario = churn_scenario()
        catalog = scenario.build_catalog()
        planner = create_planner("heuristic", catalog, config=PlannerConfig())
        for item in scenario.workload(6, arities=(2,)):
            planner.submit(item)
        assert planner.num_admitted > 0

        used = {h for (h, _o) in planner.allocation.placements}
        schedule = EventSchedule(
            events=[HostFailure(time=1.0, host=sorted(used)[0])],
            seed=1,
            duration=2.0,
        )
        result = SimulationHarness(planner).run(schedule)
        assert result.counters["evicted"] > 0
        assert result.counters["dropped"] >= 0
        for tick in result.ticks:
            assert tick.dropped >= 0

    def test_optimistic_runs_without_allocation(self):
        scenario = churn_scenario()
        schedule = build_churn_schedule(scenario, full_churn_config())
        planner = create_planner("optimistic", scenario.build_catalog())
        result = SimulationHarness(planner).run(schedule)
        assert result.counters["arrivals"] == schedule.num_arrivals
        assert result.final_active == len(planner.active_queries)
