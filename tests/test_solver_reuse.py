"""Solver-reuse tests: warm starts and model reuse never change results.

The incremental-reuse machinery added to the MILP stack (parent-basis warm
starts in branch and bound, incumbent seeding from the previous planning
round, the planner's model-reuse cache) is a pure speed optimisation.  This
module pins down the contract: with reuse on or off, every registry planner
admits the same queries and reports the same objective values, and the
branch-and-bound solver returns the same optimum.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import PlannerConfig, create_planner
from repro.milp.branch_and_bound import BnbOptions, solve_branch_and_bound
from repro.milp.expression import lin_sum
from repro.milp.model import Model, ObjectiveSense
from repro.milp.result import SolveStatus
from repro.milp.solver import SolverBackend

from tests.conftest import make_catalog, query_over

ALL_PLANNERS = ["sqpr", "heuristic", "soda", "optimistic_bound"]


def _random_milp(seed: int) -> Model:
    """A random mixed-integer model with a bounded feasible region."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 7))
    model = Model(f"rand{seed}", sense=ObjectiveSense.MAXIMIZE)
    items = [model.add_binary(f"b{k}") for k in range(n)]
    extra = model.add_continuous("y", 0.0, 5.0)
    weights = rng.uniform(1, 5, n)
    values = rng.uniform(1, 10, n)
    capacity = float(weights.sum() * 0.6)
    model.add_constr(lin_sum(w * x for w, x in zip(weights, items)) <= capacity)
    model.add_constr(extra <= lin_sum(items))
    model.set_objective(lin_sum(v * x for v, x in zip(values, items)) + 0.5 * extra)
    return model


class TestBranchAndBoundWarmStart:
    @pytest.mark.parametrize("engine", ["simplex", "auto"])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_warm_equals_cold(self, seed, engine):
        warm = solve_branch_and_bound(
            _random_milp(seed), BnbOptions(lp_engine=engine, warm_start=True)
        )
        cold = solve_branch_and_bound(
            _random_milp(seed), BnbOptions(lp_engine=engine, warm_start=False)
        )
        assert warm.status is SolveStatus.OPTIMAL
        assert cold.status is SolveStatus.OPTIMAL
        assert warm.objective == pytest.approx(cold.objective, rel=1e-6, abs=1e-6)

    def test_feasible_hint_seeds_incumbent_without_changing_optimum(self):
        model = _random_milp(7)
        baseline = solve_branch_and_bound(model, BnbOptions(lp_engine="simplex"))
        assert baseline.status is SolveStatus.OPTIMAL
        # Hint the all-zeros solution (feasible: the knapsack row is <=).
        hinted = _random_milp(7)
        hinted.set_warm_start({var: 0.0 for var in hinted.variables})
        seeded = solve_branch_and_bound(hinted, BnbOptions(lp_engine="simplex"))
        assert seeded.status is SolveStatus.OPTIMAL
        assert seeded.objective == pytest.approx(baseline.objective, rel=1e-6, abs=1e-6)

    def test_infeasible_hint_is_ignored(self):
        model = _random_milp(9)
        baseline = solve_branch_and_bound(model, BnbOptions(lp_engine="simplex"))
        hinted = _random_milp(9)
        # Violates the knapsack constraint: every item selected.
        hinted.set_warm_start({var: 1.0 for var in hinted.variables})
        seeded = solve_branch_and_bound(hinted, BnbOptions(lp_engine="simplex"))
        assert seeded.objective == pytest.approx(baseline.objective, rel=1e-6, abs=1e-6)


def _run_workload(name: str, reuse: bool):
    """Admit a small workload twice over (with repeats) and collect outcomes."""
    catalog = make_catalog(num_hosts=3, cpu=8.0, num_base=4)
    config = PlannerConfig(
        time_limit=2.0,
        backend=SolverBackend.BRANCH_AND_BOUND,
        reuse_model=reuse,
        warm_start=reuse,
    )
    planner = create_planner(name, catalog, config=config)
    workload = [
        query_over("b0", "b1"),
        query_over("b1", "b2"),
        query_over("b0", "b1", "b2"),
        query_over("b2", "b3"),
        query_over("b0", "b3"),
    ]
    outcomes = [planner.submit(item) for item in workload]
    return planner, outcomes


class TestPlannerWarmStartEquivalence:
    @pytest.mark.parametrize("name", ALL_PLANNERS)
    def test_warm_and_cold_planning_agree(self, name):
        _, warm_outcomes = _run_workload(name, reuse=True)
        _, cold_outcomes = _run_workload(name, reuse=False)
        assert [o.admitted for o in warm_outcomes] == [o.admitted for o in cold_outcomes]
        for warm, cold in zip(warm_outcomes, cold_outcomes):
            if warm.objective_value is not None and cold.objective_value is not None:
                assert warm.objective_value == pytest.approx(
                    cold.objective_value, rel=1e-6, abs=1e-6
                )

    def test_sqpr_reports_reuse_extras(self):
        _, outcomes = _run_workload("sqpr", reuse=True)
        planned = [o for o in outcomes if not o.duplicate]
        assert planned, "workload should exercise the planning path"
        for outcome in planned:
            assert isinstance(outcome.reused_model, bool)
            assert isinstance(outcome.warm_seeded, bool)


class TestModelReuseCache:
    def test_rejected_query_retry_hits_cache(self):
        # A tiny system that rejects an oversized query: the rejection leaves
        # the allocation untouched, so retrying the same query must reuse the
        # cached model instead of rebuilding it.
        catalog = make_catalog(num_hosts=2, cpu=0.5, num_base=3, rate=50.0)
        config = PlannerConfig(
            time_limit=2.0, backend=SolverBackend.BRANCH_AND_BOUND, two_stage=False
        )
        planner = create_planner("sqpr", catalog, config=config)
        query = catalog.register_query(query_over("b0", "b1", "b2"))
        first = planner.submit(query)
        retried = planner.submit(query)
        assert not first.admitted and not retried.admitted
        assert planner.reuse_stats["hits"] >= 1
        assert retried.reused_model

    def test_reset_clears_reuse_state(self):
        planner, _ = _run_workload("sqpr", reuse=True)
        planner.reset()
        assert planner.reuse_stats == {
            "hits": 0,
            "misses": 0,
            "basis_hits": 0,
            "basis_misses": 0,
        }
        assert planner._last_values == {}

    def test_disabled_reuse_never_hits(self):
        planner, _ = _run_workload("sqpr", reuse=False)
        assert planner.reuse_stats["hits"] == 0
