"""Additional coverage: solve results, planning outcomes and small helpers."""

from __future__ import annotations

import pytest

from repro.core.planner import PlanningOutcome
from repro.dsps.query import Query
from repro.milp.expression import Variable, VarType
from repro.milp.result import SolveResult, SolveStatus


def make_query() -> Query:
    return Query(
        query_id=7,
        result_stream=5,
        base_streams=frozenset({1, 2}),
        candidate_streams=frozenset({1, 2, 5}),
        candidate_operators=frozenset({0}),
    )


class TestSolveResult:
    def test_has_solution_requires_values(self):
        empty = SolveResult(SolveStatus.OPTIMAL)
        assert not empty.has_solution
        var = Variable("x", VarType.BINARY)
        full = SolveResult(SolveStatus.FEASIBLE, objective=1.0, values={var: 1.0})
        assert full.has_solution

    def test_value_lookup_defaults(self):
        var = Variable("x", VarType.BINARY)
        other = Variable("y", VarType.BINARY)
        result = SolveResult(SolveStatus.OPTIMAL, objective=1.0, values={var: 1.0})
        assert result.value(var) == 1.0
        assert result.value(other) == 0.0
        assert result.value_by_name("x") == 1.0
        assert result.value_by_name("missing", default=-1.0) == -1.0

    def test_gap_computation(self):
        result = SolveResult(SolveStatus.FEASIBLE, objective=100.0, bound=110.0)
        assert result.gap() == pytest.approx(0.1)
        assert SolveResult(SolveStatus.FEASIBLE, objective=100.0).gap() is None

    def test_infeasible_statuses_are_not_usable(self):
        for status in (SolveStatus.INFEASIBLE, SolveStatus.UNBOUNDED, SolveStatus.TIMEOUT):
            assert not SolveResult(status).has_solution


class TestQueryAndOutcomeHelpers:
    def test_query_overlap(self):
        a = make_query()
        b = Query(
            query_id=8,
            result_stream=6,
            base_streams=frozenset({2, 3}),
            candidate_streams=frozenset({2, 3, 6}),
            candidate_operators=frozenset({1}),
        )
        c = Query(
            query_id=9,
            result_stream=7,
            base_streams=frozenset({3, 4}),
            candidate_streams=frozenset({3, 4, 7}),
            candidate_operators=frozenset({2}),
        )
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_query_repr_and_arity(self):
        query = make_query()
        assert query.arity == 2
        assert "Query(7" in repr(query)

    def test_planning_outcome_repr(self):
        outcome = PlanningOutcome(query=make_query(), admitted=True, planning_time=0.25)
        text = repr(outcome)
        assert "admitted" in text
        assert "250.0 ms" in text
        rejected = PlanningOutcome(query=make_query(), admitted=False)
        assert "rejected" in repr(rejected)
