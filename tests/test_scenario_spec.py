"""Property-based tests of ScenarioSpec resolution semantics.

Pins the contract :mod:`repro.scenarios.spec` documents:

* any chain of valid field overrides resolves to a *valid*
  ``ChurnTraceConfig`` / ``SimulationScenarioConfig`` (validation re-runs
  at resolution, so no half-checked config escapes),
* last writer wins on conflicting overrides,
* composition of specs with disjoint override keys is order-independent,
* the empty spec is bit-identical to the plain base-config path —
  including the event schedule generated from it,
* unknown field names and malformed expressions fail loudly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import WorkloadError
from repro.scenarios.spec import ScenarioSpec, parse_spec
from repro.workloads.churn import ChurnTraceConfig, build_churn_schedule
from repro.workloads.scenarios import (
    SimulationScenarioConfig,
    build_simulation_scenario,
)

# Per-field strategies that always satisfy ChurnTraceConfig.__post_init__,
# so any combination of them must resolve to a valid config.
_TRACE_FIELD_STRATEGIES = {
    "duration": st.floats(10.0, 200.0),
    "arrival_rate": st.floats(0.1, 2.0),
    "min_lifetime": st.floats(1.0, 20.0),
    "lifetime_buckets": st.integers(1, 16),
    "zipf_exponent": st.floats(0.0, 3.0),
    "burst_factor": st.floats(1.0, 4.0),
    "site_locality": st.floats(0.0, 1.0),
    "diurnal_amplitude": st.floats(0.0, 0.95),
    "adversarial_fraction": st.floats(0.0, 1.0),
    "adversarial_span": st.integers(2, 5),
    "seed": st.integers(0, 2**16),
}

_TOPOLOGY_FIELD_STRATEGIES = {
    "host_cpu_capacity": st.floats(2.0, 10.0),
    "host_bandwidth": st.floats(50.0, 500.0),
    "wan_capacity": st.floats(100.0, 1000.0),
    "seed": st.integers(0, 2**16),
}


@st.composite
def trace_overrides(draw, fields=None):
    chosen = draw(
        st.lists(
            st.sampled_from(sorted(fields or _TRACE_FIELD_STRATEGIES)),
            unique=True,
            max_size=5,
        )
    )
    return {name: draw(_TRACE_FIELD_STRATEGIES[name]) for name in chosen}


@st.composite
def topology_overrides(draw):
    chosen = draw(
        st.lists(
            st.sampled_from(sorted(_TOPOLOGY_FIELD_STRATEGIES)),
            unique=True,
            max_size=3,
        )
    )
    return {name: draw(_TOPOLOGY_FIELD_STRATEGIES[name]) for name in chosen}


@settings(deadline=None, max_examples=60)
@given(
    chain=st.lists(
        st.tuples(trace_overrides(), topology_overrides()),
        min_size=1,
        max_size=4,
    )
)
def test_any_override_chain_resolves_to_valid_configs(chain):
    """Composing any number of valid specs yields valid configs, with the
    last writer winning on every overridden field."""
    combined = None
    for index, (trace, topology) in enumerate(chain):
        spec = ScenarioSpec(f"s{index}", trace=trace, topology=topology)
        combined = spec if combined is None else combined + spec
    resolved = combined.resolve()

    # Construction succeeding IS the validity property (replace() re-runs
    # __post_init__); check last-writer-wins field by field on top.
    assert isinstance(resolved.trace, ChurnTraceConfig)
    assert isinstance(resolved.topology, SimulationScenarioConfig)
    expected_trace = {}
    expected_topology = {}
    for trace, topology in chain:
        expected_trace.update(trace)
        expected_topology.update(topology)
    for name, value in expected_trace.items():
        assert getattr(resolved.trace, name) == value
    for name, value in expected_topology.items():
        assert getattr(resolved.topology, name) == value
    assert resolved.trace_overrides == expected_trace
    assert resolved.topology_overrides == expected_topology


@settings(deadline=None, max_examples=60)
@given(data=st.data())
def test_disjoint_composition_is_order_independent(data):
    """``(a + b).resolve() == (b + a).resolve()`` whenever a and b touch
    disjoint fields."""
    names = sorted(_TRACE_FIELD_STRATEGIES)
    first = data.draw(
        st.lists(st.sampled_from(names), unique=True, max_size=4)
    )
    rest = [name for name in names if name not in first]
    a = ScenarioSpec(
        "a", trace=data.draw(trace_overrides(fields=first or None) if first else st.just({}))
    )
    b = ScenarioSpec(
        "b",
        trace={
            name: data.draw(_TRACE_FIELD_STRATEGIES[name])
            for name in data.draw(
                st.lists(st.sampled_from(rest), unique=True, max_size=4)
            )
        },
        topology=data.draw(topology_overrides()),
    )
    ab = (a + b).resolve()
    ba = (b + a).resolve()
    assert ab.trace == ba.trace
    assert ab.topology == ba.topology


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(0, 2**16))
def test_empty_spec_is_bit_identical_to_base_path(seed):
    """Resolving the empty spec reproduces the plain-config route exactly,
    schedule included."""
    base_topology = SimulationScenarioConfig(
        num_hosts=3, num_base_streams=8, seed=3
    )
    base_trace = ChurnTraceConfig(
        duration=30.0, arrival_rate=0.6, arities=(2,), seed=seed
    )
    resolved = ScenarioSpec("empty").resolve(base_trace, base_topology)
    assert resolved.trace == base_trace
    assert resolved.topology == base_topology

    direct = build_churn_schedule(
        build_simulation_scenario(base_topology), base_trace
    )
    via_spec = resolved.build_schedule()
    assert via_spec.seed == direct.seed
    assert via_spec.duration == direct.duration
    assert via_spec.events == direct.events


def test_conflicting_overrides_last_writer_wins():
    low = ScenarioSpec("low", trace={"arrival_rate": 0.2})
    high = ScenarioSpec("high", trace={"arrival_rate": 1.4})
    assert (low + high).resolve().trace.arrival_rate == 1.4
    assert (high + low).resolve().trace.arrival_rate == 0.2


def test_unknown_trace_field_rejected_at_construction():
    with pytest.raises(WorkloadError, match="unknown ChurnTraceConfig"):
        ScenarioSpec("typo", trace={"arival_rate": 0.5})


def test_unknown_topology_field_rejected_at_construction():
    with pytest.raises(WorkloadError, match="unknown SimulationScenario"):
        ScenarioSpec("typo", topology={"num_hoots": 4})


def test_invalid_override_combination_fails_at_resolve():
    spec = ScenarioSpec("bad", trace={"arrival_rate": -1.0})
    with pytest.raises(WorkloadError, match="arrival_rate"):
        spec.resolve()


def test_spec_needs_a_name_and_spec_parents():
    with pytest.raises(WorkloadError, match="non-empty name"):
        ScenarioSpec("")
    with pytest.raises(WorkloadError, match="non-spec"):
        ScenarioSpec("child", extends=("not-a-spec",))


def test_parse_spec_composes_and_reports_unknown_names():
    registry = {
        "a": ScenarioSpec("a", trace={"burst_factor": 2.0}),
        "b": ScenarioSpec("b", trace={"zipf_exponent": 0.0}),
    }
    combined = parse_spec("a+b", registry)
    assert combined.name == "a+b"
    trace, _ = combined.flattened_overrides()
    assert trace == {"burst_factor": 2.0, "zipf_exponent": 0.0}

    with pytest.raises(WorkloadError, match="known scenarios: a, b"):
        parse_spec("a+nope", registry)
    with pytest.raises(WorkloadError, match="empty operand"):
        parse_spec("a++b", registry)


def test_parse_spec_pinpoints_the_malformed_operand():
    registry = {"a": ScenarioSpec("a"), "b": ScenarioSpec("b")}
    # The diagnostic names which way the expression is malformed so a typo
    # in a long composition is findable without counting plus signs.
    with pytest.raises(WorkloadError, match="consecutive '\\+'"):
        parse_spec("a++b", registry)
    with pytest.raises(WorkloadError, match="leading '\\+'"):
        parse_spec("+a+b", registry)
    with pytest.raises(WorkloadError, match="trailing '\\+'"):
        parse_spec("a+b+", registry)
    with pytest.raises(WorkloadError, match="expression is empty"):
        parse_spec("", registry)
    with pytest.raises(WorkloadError, match="expression is empty"):
        parse_spec("   ", registry)
    with pytest.raises(WorkloadError, match="leading '\\+'"):
        parse_spec("+", registry)
    # Whitespace-padded operands still work; whitespace-only ones do not.
    assert parse_spec(" a + b ", registry).name == "a+b"
    with pytest.raises(WorkloadError, match="empty operand"):
        parse_spec("a+ +b", registry)


def test_to_dict_reports_flattened_overrides():
    a = ScenarioSpec("a", trace={"burst_factor": 2.0})
    b = ScenarioSpec("b", topology={"seed": 11})
    payload = (a + b).to_dict()
    assert payload["name"] == "a+b"
    assert payload["extends"] == ["a", "b"]
    assert payload["trace_overrides"] == {"burst_factor": 2.0}
    assert payload["topology_overrides"] == {"seed": 11}
