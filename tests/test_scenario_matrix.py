"""Tests of the scenario-matrix sweep runner and its artifact bundles.

Covers the runner's contract: baseline-linked KPI deltas, determinism
across worker counts and across the service-replay path, artifact
serialisation stability, golden-fixture drift detection, the CLI, and
the harness's per-event invariant recording the artifacts surface.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import create_planner
from repro.dsps.allocation import Allocation
from repro.exceptions import SimulationError
from repro.experiments.matrix import (
    _main,
    generate_golden_matrix,
    run_matrix,
)
from repro.scenarios import (
    BASELINE_SCENARIO,
    MATRIX_REGIMES,
    MATRIX_SCALES,
    SCENARIO_MATRIX,
    diff_golden,
)
from repro.scenarios.spec import ScenarioSpec
from repro.sim import SimulationHarness

SCENARIOS = [BASELINE_SCENARIO, "flash_crowd", "flash_crowd+site_partition"]
PLANNERS = ["heuristic", "optimistic"]


@pytest.fixture(scope="module")
def sweep():
    return run_matrix(scenarios=SCENARIOS, planners=PLANNERS)


def test_registry_covers_the_required_regimes():
    # The default sweep exercises at least six regimes beyond baseline.
    assert len([r for r in MATRIX_REGIMES if r != BASELINE_SCENARIO]) >= 6
    for expression in MATRIX_REGIMES:
        for part in expression.split("+"):
            assert part in SCENARIO_MATRIX


def test_every_cell_present_with_baseline_deltas(sweep):
    assert len(sweep.artifacts) == len(SCENARIOS) * len(PLANNERS)
    for cid, artifact in sweep.artifacts.items():
        assert artifact.cell_id == cid
        assert artifact.ok
        assert artifact.fingerprint
        assert artifact.baseline_cell == (
            f"{BASELINE_SCENARIO}/{artifact.planner}/{artifact.scale}"
        )
        assert set(artifact.kpi_deltas) == set(artifact.kpis)


def test_baseline_deltas_are_zero_for_baseline_cells(sweep):
    for planner in PLANNERS:
        artifact = sweep.artifacts[f"{BASELINE_SCENARIO}/{planner}/quick"]
        assert all(delta == 0.0 for delta in artifact.kpi_deltas.values())


def test_flash_crowd_admits_more_than_baseline(sweep):
    for planner in PLANNERS:
        artifact = sweep.artifacts[f"flash_crowd/{planner}/quick"]
        assert artifact.kpi_deltas["arrivals"] > 0
        assert artifact.kpi_deltas["admitted"] > 0


def test_baseline_is_prepended_when_absent():
    sweep = run_matrix(scenarios=["flash_crowd"], planners=["heuristic"])
    assert set(sweep.artifacts) == {
        f"{BASELINE_SCENARIO}/heuristic/quick",
        "flash_crowd/heuristic/quick",
    }


def test_worker_count_never_changes_fingerprints(sweep):
    parallel = run_matrix(scenarios=SCENARIOS, planners=PLANNERS, workers=3)
    assert parallel.fingerprints() == sweep.fingerprints()


def test_service_replay_matches_direct_submission(sweep):
    replayed = run_matrix(
        scenarios=[BASELINE_SCENARIO, "flash_crowd"],
        planners=["heuristic"],
        through_service=True,
    )
    for cid, artifact in replayed.artifacts.items():
        assert artifact.service_replay
        assert artifact.fingerprint == sweep.artifacts[cid].fingerprint


def test_seed_override_rerolls_the_matrix(sweep):
    rerolled = run_matrix(
        scenarios=[BASELINE_SCENARIO], planners=["heuristic"], seed=4242
    )
    cid = f"{BASELINE_SCENARIO}/heuristic/quick"
    assert rerolled.artifacts[cid].seed == 4242
    assert (
        rerolled.artifacts[cid].fingerprint
        != sweep.artifacts[cid].fingerprint
    )


def test_unknown_scale_and_bad_workers_fail_loudly():
    with pytest.raises(SimulationError, match="unknown matrix scale"):
        run_matrix(scenarios=[BASELINE_SCENARIO], scales=["galactic"])
    with pytest.raises(SimulationError, match="workers"):
        run_matrix(scenarios=[BASELINE_SCENARIO], workers=0)


def test_artifact_json_is_stable_and_complete(sweep, tmp_path):
    artifact = sweep.artifacts["flash_crowd/heuristic/quick"]
    text = artifact.to_json()
    assert text.endswith("\n")
    payload = json.loads(text)
    assert payload["schema"] == 1
    assert payload["spec"]["trace_overrides"]["burst_factor"] == 3.0
    assert payload["inputs"]["trace"]["burst_factor"] == 3.0
    assert payload["inputs"]["topology"]["num_hosts"] == 4
    assert payload["schedule"]["num_events"] > 0
    assert payload["invariants"]["ok"] is True
    assert payload["invariants"]["violation_events"] == []
    # Byte-stable: serialising twice gives identical text.
    assert artifact.to_json() == text

    written = artifact.write(tmp_path)
    assert written.read_text(encoding="utf-8") == text


def test_write_artifacts_emits_index(sweep, tmp_path):
    paths = sweep.write_artifacts(tmp_path)
    assert len(paths) == len(sweep.artifacts) + 1
    index = json.loads((tmp_path / "matrix_index.json").read_text())
    assert set(index["cells"]) == set(sweep.artifacts)
    for cid, entry in index["cells"].items():
        assert (tmp_path / entry["file"]).exists()
        assert entry["fingerprint"] == sweep.artifacts[cid].fingerprint


def test_diff_golden_reports_drift_missing_and_extra(sweep):
    golden = sweep.golden_payload()
    assert diff_golden(golden, sweep.artifacts) == []

    tampered = {
        "schema": golden["schema"],
        "cells": dict(golden["cells"], **{"extra/cell/quick": "0" * 64}),
    }
    victim = next(iter(golden["cells"]))
    tampered["cells"][victim] = "f" * 64
    problems = diff_golden(tampered, sweep.artifacts)
    assert any("drifted" in p and victim in p for p in problems)
    assert any("missing from this sweep" in p for p in problems)

    subset = {cid: sweep.artifacts[cid] for cid in list(sweep.artifacts)[:1]}
    extra = diff_golden({"cells": {}}, subset)
    assert extra == [
        f"cell {next(iter(subset))} not present in the golden fixture"
    ]


def test_golden_json_generation_is_idempotent(sweep):
    assert sweep.golden_json() == sweep.golden_json()
    payload = json.loads(sweep.golden_json())
    assert payload["cells"] == sweep.fingerprints()


def test_cli_writes_artifacts_and_checks_golden(tmp_path, capsys):
    out_dir = tmp_path / "artifacts"
    golden = tmp_path / "golden.json"
    base_argv = [
        "--scenarios",
        BASELINE_SCENARIO,
        "flash_crowd",
        "--planners",
        "heuristic",
    ]
    _main(
        base_argv
        + ["--out-dir", str(out_dir), "--write-golden", str(golden)]
    )
    output = capsys.readouterr().out
    assert "scenario matrix: 2 cells" in output
    assert golden.exists()
    assert (out_dir / "matrix_index.json").exists()

    # Same seeds, same golden: the check passes and exits cleanly.
    _main(base_argv + ["--check-golden", str(golden)])
    assert "golden fingerprints match" in capsys.readouterr().out

    # A tampered fixture makes the run exit non-zero and name the cell.
    payload = json.loads(golden.read_text())
    victim = next(iter(payload["cells"]))
    payload["cells"][victim] = "0" * 64
    golden.write_text(json.dumps(payload))
    with pytest.raises(SystemExit):
        _main(base_argv + ["--check-golden", str(golden)])
    assert "GOLDEN DRIFT" in capsys.readouterr().out


def test_generate_golden_matrix_matches_default_sweep():
    # The fixture generator is just the default quick sweep serialised.
    sweep = run_matrix(
        scenarios=[BASELINE_SCENARIO], planners=["heuristic"]
    )
    generated = generate_golden_matrix()
    payload = json.loads(generated)
    cid = f"{BASELINE_SCENARIO}/heuristic/quick"
    assert payload["cells"][cid] == sweep.artifacts[cid].fingerprint


# ------------------------------------------------------- violation surfacing
def _tiny_run(monkeypatch, on_violation):
    """Run the quick baseline cell with Allocation.validate forced to
    report a fake violation on every check."""
    scale = MATRIX_SCALES["quick"]
    resolved = ScenarioSpec("probe").resolve(scale.trace, scale.topology)
    scenario = resolved.build_scenario()
    schedule = resolved.build_schedule(scenario)
    planner = create_planner("heuristic", scenario.build_catalog())
    monkeypatch.setattr(
        Allocation, "validate", lambda self: ["forced violation"]
    )
    harness = SimulationHarness(
        planner, validation_mode="full", on_violation=on_violation
    )
    return harness.run(schedule), schedule


def test_recorded_violations_carry_event_index_and_kind(monkeypatch):
    result, schedule = _tiny_run(monkeypatch, on_violation="record")
    assert result.violation_events
    events = list(schedule)
    for entry in result.violation_events:
        assert entry["violations"] == ["forced violation"]
        assert entry["stage"] == "invariant violated"
        event = events[entry["event_index"]]
        assert entry["event_kind"] == event.kind
        assert entry["time"] == event.time
    # The forced violations flow through to the KPI the artifacts report.
    assert result.kpis()["invariant_violations"] == len(
        result.violation_events
    ) + len(result.final_violations)


def test_raise_mode_aborts_on_first_violation(monkeypatch):
    with pytest.raises(SimulationError, match="invariant violated"):
        _tiny_run(monkeypatch, on_violation="raise")


def test_matrix_cells_record_instead_of_raising(monkeypatch, sweep):
    """A violating cell must not abort the sweep — its artifact reports."""
    monkeypatch.setattr(
        Allocation, "validate", lambda self: ["forced violation"]
    )
    broken = run_matrix(
        scenarios=[BASELINE_SCENARIO], planners=["heuristic"]
    )
    artifact = broken.artifacts[f"{BASELINE_SCENARIO}/heuristic/quick"]
    assert not artifact.ok
    assert artifact.invariants["final_violations"] == ["forced violation"]
    assert broken.violations()


def test_harness_rejects_unknown_on_violation_mode():
    scale = MATRIX_SCALES["quick"]
    resolved = ScenarioSpec("probe").resolve(scale.trace, scale.topology)
    planner = create_planner(
        "heuristic", resolved.build_scenario().build_catalog()
    )
    with pytest.raises(SimulationError, match="on_violation"):
        SimulationHarness(planner, on_violation="ignore")
