"""Tests for the Model container and its lowering to standard form."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.milp.expression import VarType
from repro.milp.model import Model, ObjectiveSense
from repro.milp.standard_form import to_standard_form


def build_toy_model() -> Model:
    model = Model("toy", sense=ObjectiveSense.MAXIMIZE)
    x = model.add_binary("x")
    y = model.add_binary("y")
    z = model.add_continuous("z", 0.0, 4.0)
    model.add_constr(x + y <= 1, name="choose_one")
    model.add_constr(z >= 2 * y, name="link")
    model.set_objective(3 * x + 2 * y + z)
    return model


class TestModel:
    def test_duplicate_variable_name_rejected(self):
        model = Model()
        model.add_var("x")
        with pytest.raises(ModelError):
            model.add_var("x")

    def test_get_var_and_has_var(self):
        model = Model()
        x = model.add_var("x")
        assert model.get_var("x") is x
        assert model.has_var("x")
        assert not model.has_var("y")
        with pytest.raises(ModelError):
            model.get_var("missing")

    def test_counts(self):
        model = build_toy_model()
        assert model.num_variables == 3
        assert model.num_integer_variables == 2
        assert model.num_constraints == 2

    def test_foreign_variable_rejected_in_constraint(self):
        model_a = Model("a")
        model_b = Model("b")
        x = model_a.add_var("x")
        with pytest.raises(ModelError):
            model_b.add_constr(x <= 1)

    def test_add_constr_requires_constraint(self):
        model = Model()
        model.add_var("x")
        with pytest.raises(ModelError):
            model.add_constr("not-a-constraint")  # type: ignore[arg-type]

    def test_fix_var_respects_bounds(self):
        model = Model()
        x = model.add_binary("x")
        model.fix_var(x, 1)
        assert model.effective_bounds(x) == (1.0, 1.0)
        with pytest.raises(ModelError):
            model.fix_var(x, 2)

    def test_fix_integer_to_fraction_rejected(self):
        model = Model()
        x = model.add_var("x", VarType.INTEGER, 0, 10)
        with pytest.raises(ModelError):
            model.fix_var(x, 0.5)

    def test_objective_value_and_feasibility(self):
        model = build_toy_model()
        x, y, z = model.get_var("x"), model.get_var("y"), model.get_var("z")
        good = {x: 1.0, y: 0.0, z: 0.0}
        assert model.is_feasible(good)
        assert model.objective_value(good) == pytest.approx(3.0)
        bad = {x: 1.0, y: 1.0, z: 2.0}
        assert not model.is_feasible(bad)

    def test_is_feasible_checks_integrality(self):
        model = build_toy_model()
        x, y, z = model.get_var("x"), model.get_var("y"), model.get_var("z")
        assert not model.is_feasible({x: 0.5, y: 0.0, z: 0.0})

    def test_summary_mentions_size(self):
        model = build_toy_model()
        text = model.summary()
        assert "3 vars" in text
        assert "2 constraints" in text


class TestStandardForm:
    def test_maximise_is_negated(self):
        model = build_toy_model()
        form = to_standard_form(model)
        x_index = form.index_of(model.get_var("x"))
        assert form.c[x_index] == pytest.approx(-3.0)
        assert form.objective_sign == -1.0

    def test_constraint_rows(self):
        model = build_toy_model()
        form = to_standard_form(model)
        # choose_one (<=) and link (>= turned into <=) are both ub rows.
        assert form.a_ub.shape == (2, 3)
        assert form.a_eq.shape[0] == 0

    def test_eq_constraints_lowered_separately(self):
        model = Model()
        x = model.add_continuous("x", 0, 10)
        y = model.add_continuous("y", 0, 10)
        model.add_constr(x + y == 4)
        form = to_standard_form(model)
        assert form.a_eq.shape == (1, 2)
        assert form.b_eq[0] == pytest.approx(4.0)

    def test_bounds_and_integrality(self):
        model = build_toy_model()
        form = to_standard_form(model)
        z_index = form.index_of(model.get_var("z"))
        assert form.upper[z_index] == pytest.approx(4.0)
        assert form.integrality[z_index] == 0.0
        x_index = form.index_of(model.get_var("x"))
        assert form.integrality[x_index] == 1.0

    def test_fixed_variable_becomes_tight_bounds(self):
        model = build_toy_model()
        x = model.get_var("x")
        model.fix_var(x, 0)
        form = to_standard_form(model)
        idx = form.index_of(x)
        assert form.lower[idx] == form.upper[idx] == 0.0

    def test_empty_model_rejected(self):
        with pytest.raises(ModelError):
            to_standard_form(Model())

    def test_bound_mutation_invalidates_cached_form(self):
        # Regression: assigning Variable.upper/.lower after a solve used
        # to bypass Model.revision, silently serving the stale cached
        # StandardForm with the old bounds.
        model = build_toy_model()
        x = model.get_var("x")
        stale = to_standard_form(model)
        revision = model.revision
        x.upper = 0.0
        assert model.revision > revision
        fresh = to_standard_form(model)
        assert fresh is not stale
        assert fresh.upper[fresh.index_of(x)] == pytest.approx(0.0)

    def test_bound_mutation_noop_keeps_cache(self):
        model = build_toy_model()
        x = model.get_var("x")
        form = to_standard_form(model)
        x.upper = x.upper  # unchanged value: no structural edit
        assert to_standard_form(model) is form

    def test_empty_domain_assignment_rejected(self):
        model = build_toy_model()
        x = model.get_var("x")
        with pytest.raises(ModelError, match="empty domain"):
            x.lower = x.upper + 1.0

    def test_model_objective_round_trip(self):
        model = build_toy_model()
        form = to_standard_form(model)
        x = np.array([1.0, 0.0, 0.0])
        assert form.model_objective(x) == pytest.approx(3.0)
