"""Tests for the MILP modelling layer: variables, expressions, constraints."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ModelError
from repro.milp.constraint import Constraint, ConstraintSense
from repro.milp.expression import LinExpr, Variable, VarType, lin_sum


def make_vars(n: int = 3):
    return [Variable(f"x{i}", VarType.CONTINUOUS) for i in range(n)]


class TestVariable:
    def test_binary_bounds_are_clamped(self):
        var = Variable("b", VarType.BINARY, lower=-5, upper=9)
        assert var.lower == 0.0
        assert var.upper == 1.0

    def test_empty_domain_rejected(self):
        with pytest.raises(ModelError):
            Variable("x", VarType.CONTINUOUS, lower=2.0, upper=1.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            Variable("", VarType.CONTINUOUS)

    def test_is_integer(self):
        assert Variable("i", VarType.INTEGER).is_integer
        assert Variable("b", VarType.BINARY).is_integer
        assert not Variable("c", VarType.CONTINUOUS).is_integer

    def test_variables_hash_by_identity(self):
        a = Variable("same", VarType.BINARY)
        b = Variable("same", VarType.BINARY)
        mapping = {a: 1.0, b: 2.0}
        assert len(mapping) == 2


class TestLinExprArithmetic:
    def test_addition_merges_terms(self):
        x, y, _ = make_vars()
        expr = x + y + x
        assert expr.coefficient(x) == 2.0
        assert expr.coefficient(y) == 1.0

    def test_subtraction_and_constants(self):
        x, y, _ = make_vars()
        expr = 2 * x - y + 5
        assert expr.coefficient(x) == 2.0
        assert expr.coefficient(y) == -1.0
        assert expr.constant == 5.0

    def test_rsub(self):
        (x,) = make_vars(1)
        expr = 10 - x
        assert expr.constant == 10.0
        assert expr.coefficient(x) == -1.0

    def test_scalar_multiplication(self):
        x, y, _ = make_vars()
        expr = (x + 2 * y + 1) * 3
        assert expr.coefficient(x) == 3.0
        assert expr.coefficient(y) == 6.0
        assert expr.constant == 3.0

    def test_multiplying_by_expression_fails(self):
        x, y, _ = make_vars()
        with pytest.raises(ModelError):
            _ = x.to_expr() * y.to_expr()  # type: ignore[arg-type]

    def test_zero_coefficients_dropped(self):
        x, y, _ = make_vars()
        expr = x + y - x
        assert x not in expr.terms
        assert expr.coefficient(y) == 1.0

    def test_value_evaluation(self):
        x, y, _ = make_vars()
        expr = 2 * x + 3 * y + 1
        assert expr.value({x: 1.0, y: 2.0}) == pytest.approx(9.0)

    def test_value_missing_vars_default_to_zero(self):
        x, y, _ = make_vars()
        expr = 2 * x + 3 * y
        assert expr.value({x: 1.0}) == pytest.approx(2.0)

    def test_lin_sum_matches_manual_addition(self):
        x, y, z = make_vars()
        total = lin_sum([x, 2 * y, z, 4])
        manual = x + 2 * y + z + 4
        assert total.terms == manual.terms
        assert total.constant == manual.constant

    def test_lin_sum_rejects_bad_items(self):
        with pytest.raises(ModelError):
            lin_sum(["oops"])  # type: ignore[list-item]

    @given(
        coeffs=st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1, max_size=6
        ),
        values=st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=6, max_size=6
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_evaluation_is_linear(self, coeffs, values):
        """sum(c_i * v_i) evaluated through LinExpr equals the numpy dot product."""
        variables = make_vars(len(coeffs))
        expr = lin_sum(c * v for c, v in zip(coeffs, variables))
        assignment = {v: values[i] for i, v in enumerate(variables)}
        expected = sum(c * values[i] for i, c in enumerate(coeffs))
        assert expr.value(assignment) == pytest.approx(expected, rel=1e-9, abs=1e-9)


class TestConstraints:
    def test_le_constraint_from_comparison(self):
        x, y, _ = make_vars()
        constraint = x + y <= 5
        assert isinstance(constraint, Constraint)
        assert constraint.sense is ConstraintSense.LE
        assert constraint.rhs == pytest.approx(5.0)

    def test_ge_constraint_from_comparison(self):
        x, _, _ = make_vars()
        constraint = x >= 2
        assert constraint.sense is ConstraintSense.GE
        assert constraint.rhs == pytest.approx(2.0)

    def test_eq_constraint_from_comparison(self):
        x, y, _ = make_vars()
        constraint = x + y == 1
        assert constraint.sense is ConstraintSense.EQ

    def test_violation_le(self):
        x, _, _ = make_vars()
        constraint = x <= 1
        assert constraint.violation({x: 0.5}) == 0.0
        assert constraint.violation({x: 2.0}) > 0.0

    def test_violation_ge(self):
        x, _, _ = make_vars()
        constraint = x >= 1
        assert constraint.violation({x: 2.0}) == 0.0
        assert constraint.violation({x: 0.0}) > 0.0

    def test_violation_eq(self):
        x, _, _ = make_vars()
        constraint = x == 1
        assert constraint.is_satisfied({x: 1.0})
        assert not constraint.is_satisfied({x: 0.0})

    def test_named_helper(self):
        x, _, _ = make_vars()
        constraint = (x <= 1).named("cap")
        assert constraint.name == "cap"
