"""Thread-safety regressions for shared planner infrastructure.

The admission service's parallel shard mode shares a planner's
:class:`~repro.core.model_builder.ModelReuseCache` and
:class:`~repro.api.base.PlannerStats` across pool threads.  These tests
hammer both from pools and pin the invariants that used to be racy:
counter totals, LRU bounds, and outcome-list integrity.  A final parity
test pins the federated planner's contract that ``workers`` changes
wall-clock only, never results.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import PlannerConfig, PlanningOutcome, create_planner
from repro.core.model_builder import ModelReuseCache
from repro.core.planner import SQPRPlanner
from repro.core.reduction import compute_scope
from repro.core.weights import ObjectiveWeights
from repro.experiments.federated import federated_scenario, site_local_workload

from tests.conftest import make_catalog, query_over


class TestModelReuseCacheUnderPool:
    def _planning_inputs(self, num_queries: int = 6):
        """Real catalog/allocation/scope tuples for distinct cache keys."""
        catalog = make_catalog(num_hosts=3, num_base=6)
        planner = SQPRPlanner(catalog, PlannerConfig())
        weights = ObjectiveWeights.paper_default(catalog)
        base = [f"b{i}" for i in range(6)]
        inputs = []
        for k in range(num_queries):
            query = catalog.register_query(
                query_over(base[k % 6], base[(k + 1) % 6])
            )
            scope = compute_scope(catalog, planner.allocation, [query])
            inputs.append((catalog, planner.allocation, scope))
        return inputs, weights

    def test_pool_hammer_counters_and_bound(self):
        inputs, weights = self._planning_inputs()
        cache = ModelReuseCache(max_entries=3)  # force eviction races
        rounds_per_thread = 40
        num_threads = 8

        def hammer(worker: int) -> int:
            local_hits = 0
            for round_index in range(rounds_per_thread):
                catalog, allocation, scope = inputs[
                    (worker + round_index) % len(inputs)
                ]
                model, reused = cache.get_or_build(
                    catalog, allocation, scope, weights
                )
                assert model is not None
                local_hits += int(reused)
            return local_hits

        with ThreadPoolExecutor(max_workers=num_threads) as pool:
            hit_counts = list(pool.map(hammer, range(num_threads)))

        total_calls = rounds_per_thread * num_threads
        # Every call is either a hit or a miss — no lost updates.
        assert cache.hits + cache.misses == total_calls
        assert cache.hits == sum(hit_counts)
        # Eviction kept the LRU bounded despite concurrent inserts.
        assert len(cache._entries) <= cache.max_entries
        # With 6 keys cycling through 3 slots there were real evictions.
        assert cache.misses > len(inputs)

    def test_clear_races_with_lookups(self):
        inputs, weights = self._planning_inputs(num_queries=3)
        cache = ModelReuseCache(max_entries=4)
        stop = threading.Event()

        def churn() -> None:
            index = 0
            while not stop.is_set():
                catalog, allocation, scope = inputs[index % len(inputs)]
                cache.get_or_build(catalog, allocation, scope, weights)
                index += 1

        threads = [threading.Thread(target=churn) for _ in range(4)]
        for thread in threads:
            thread.start()
        for _ in range(50):
            cache.clear()
        stop.set()
        for thread in threads:
            thread.join()
        assert len(cache._entries) <= cache.max_entries


class TestPlannerStatsUnderPool:
    def test_concurrent_record_keeps_every_outcome(self):
        catalog = make_catalog()
        planner = create_planner("heuristic", catalog)
        per_thread = 200
        num_threads = 8
        query = catalog.register_query(query_over("b0", "b1"))

        def record(worker: int) -> None:
            for index in range(per_thread):
                planner._record(
                    PlanningOutcome(
                        query=query,
                        admitted=(index % 2 == 0),
                        planning_time=0.001,
                    )
                )

        with ThreadPoolExecutor(max_workers=num_threads) as pool:
            list(pool.map(record, range(num_threads)))

        total = per_thread * num_threads
        assert planner.num_submitted == total
        # No appends were lost: every other recorded outcome was an admit.
        assert sum(1 for o in planner.outcomes if o.admitted) == total // 2
        assert planner.admission_rate() == pytest.approx(0.5)
        assert planner.average_planning_time() == pytest.approx(0.001)

    def test_stats_read_while_recording(self):
        catalog = make_catalog()
        planner = create_planner("heuristic", catalog)
        query = catalog.register_query(query_over("b0", "b1"))
        stop = threading.Event()
        errors = []

        def reader() -> None:
            while not stop.is_set():
                try:
                    rate = planner.admission_rate()
                    assert 0.0 <= rate <= 1.0
                    planner.average_planning_time()
                except Exception as error:  # pragma: no cover
                    errors.append(error)
                    return

        thread = threading.Thread(target=reader)
        thread.start()
        for index in range(2000):
            planner._record(
                PlanningOutcome(query=query, admitted=True, planning_time=0.0)
            )
        stop.set()
        thread.join()
        assert not errors
        assert planner.num_submitted == 2000


class TestFederatedWorkersParity:
    @pytest.mark.parametrize("inner", ["sqpr", "heuristic"])
    def test_parallel_batches_match_serial(self, inner):
        scenario = federated_scenario(3, seed=11)
        workload = site_local_workload(scenario, queries_per_site=4)
        config = PlannerConfig(time_limit=2.0)

        def run(workers):
            catalog = scenario.build_catalog()
            planner = create_planner(
                f"federated:{inner}", catalog, config=config, workers=workers
            )
            outcomes = []
            for start in range(0, len(workload), 6):
                outcomes.extend(
                    planner.submit_batch(workload[start : start + 6])
                )
            return (
                [outcome.admitted for outcome in outcomes],
                planner.allocation.fingerprint(),
            )

        serial_decisions, serial_fp = run(workers=1)
        parallel_decisions, parallel_fp = run(workers=4)
        assert parallel_decisions == serial_decisions
        assert parallel_fp == serial_fp

    def test_workers_validation(self):
        scenario = federated_scenario(2, seed=3)
        catalog = scenario.build_catalog()
        with pytest.raises(Exception):
            create_planner("federated:sqpr", catalog, workers=0)
