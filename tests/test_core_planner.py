"""Tests for the SQPR planner (Algorithm 1), batching and statistics."""

from __future__ import annotations

import pytest

from repro.core.planner import PlannerConfig, SQPRPlanner
from repro.exceptions import PlanningError
from tests.conftest import make_catalog, query_over


class TestSubmit:
    def test_single_admission(self, tiny_planner):
        outcome = tiny_planner.submit(query_over("b0", "b1"))
        assert outcome.admitted
        assert not outcome.duplicate
        assert outcome.planning_time >= 0.0
        assert tiny_planner.num_admitted == 1
        assert tiny_planner.allocation.validate() == []

    def test_duplicate_query_admitted_for_free(self, tiny_planner):
        first = tiny_planner.submit(query_over("b0", "b1"))
        second = tiny_planner.submit(query_over("b1", "b0"))
        assert first.admitted and second.admitted
        assert second.duplicate
        assert second.solve_result is None
        assert tiny_planner.num_admitted == 2

    def test_sequence_of_queries_stays_feasible(self, tiny_planner):
        items = [
            query_over("b0", "b1"),
            query_over("b1", "b2"),
            query_over("b0", "b1", "b2"),
            query_over("b2", "b3"),
            query_over("b0", "b3"),
        ]
        for item in items:
            tiny_planner.submit(item)
        assert tiny_planner.allocation.validate() == []
        assert tiny_planner.num_admitted >= 4

    def test_rejection_when_resources_exhausted(self):
        catalog = make_catalog(num_hosts=2, cpu=1.2, num_base=4)
        planner = SQPRPlanner(
            catalog, config=PlannerConfig(time_limit=5.0, validate_after_apply=True)
        )
        outcomes = [
            planner.submit(query_over("b0", "b1")),
            planner.submit(query_over("b2", "b3")),
            planner.submit(query_over("b0", "b2")),
            planner.submit(query_over("b1", "b3")),
        ]
        assert any(o.admitted for o in outcomes)
        assert any(not o.admitted for o in outcomes)
        assert planner.allocation.validate() == []
        # Admitted queries keep being admitted even after later rejections.
        for outcome in outcomes:
            if outcome.admitted:
                assert outcome.query.query_id in planner.allocation.admitted_queries

    def test_submit_rejects_bad_type(self, tiny_planner):
        with pytest.raises(PlanningError):
            tiny_planner.submit("not a query")  # type: ignore[arg-type]

    def test_statistics(self, tiny_planner):
        tiny_planner.submit(query_over("b0", "b1"))
        tiny_planner.submit(query_over("b2", "b3"))
        assert tiny_planner.num_submitted == 2
        assert 0.0 < tiny_planner.admission_rate() <= 1.0
        assert tiny_planner.average_planning_time() >= 0.0

    def test_outcome_records_model_size(self, tiny_planner):
        outcome = tiny_planner.submit(query_over("b0", "b1"))
        assert outcome.model_size > 0
        assert outcome.scope_streams >= 3
        assert outcome.scope_operators >= 1


class TestBatching:
    def test_batch_submission(self, tiny_planner):
        outcomes = tiny_planner.submit_batch(
            [query_over("b0", "b1"), query_over("b2", "b3")]
        )
        assert len(outcomes) == 2
        assert all(o.admitted for o in outcomes)
        assert tiny_planner.allocation.validate() == []

    def test_empty_batch(self, tiny_planner):
        assert tiny_planner.submit_batch([]) == []

    def test_batch_outcomes_preserve_order(self, tiny_planner):
        items = [query_over("b0", "b1"), query_over("b1", "b2"), query_over("b0", "b1")]
        outcomes = tiny_planner.submit_batch(items)
        assert [o.query.base_streams for o in outcomes] == [
            frozenset({0, 1}),
            frozenset({1, 2}),
            frozenset({0, 1}),
        ]
        # The third item duplicates the first; within one batch it is covered
        # by the same provided result stream and therefore admitted.
        assert outcomes[0].admitted and outcomes[2].admitted


class TestConfigurationVariants:
    @pytest.mark.parametrize("replan", [True, False])
    def test_replanning_toggle(self, replan):
        catalog = make_catalog(num_hosts=3, num_base=4)
        planner = SQPRPlanner(
            catalog,
            config=PlannerConfig(
                time_limit=5.0, replan_overlapping=replan, validate_after_apply=True
            ),
        )
        for names in (("b0", "b1"), ("b0", "b1", "b2"), ("b1", "b2")):
            planner.submit(query_over(*names))
        assert planner.allocation.validate() == []
        assert planner.num_admitted >= 2

    def test_relay_disabled(self):
        catalog = make_catalog(num_hosts=3, num_base=4)
        planner = SQPRPlanner(
            catalog,
            config=PlannerConfig(
                time_limit=5.0, allow_relay=False, validate_after_apply=True
            ),
        )
        outcome = planner.submit(query_over("b0", "b1", "b2"))
        assert outcome.admitted
        assert planner.allocation.validate() == []

    def test_single_stage_mode(self):
        catalog = make_catalog(num_hosts=3, num_base=4)
        planner = SQPRPlanner(
            catalog,
            config=PlannerConfig(
                time_limit=5.0, two_stage=False, validate_after_apply=True
            ),
        )
        outcome = planner.submit(query_over("b0", "b1"))
        assert outcome.admitted

    def test_garbage_collection_keeps_allocation_minimal(self):
        catalog = make_catalog(num_hosts=3, num_base=4)
        planner = SQPRPlanner(
            catalog,
            config=PlannerConfig(time_limit=5.0, garbage_collect=True),
        )
        planner.submit(query_over("b0", "b1"))
        planner.submit(query_over("b0", "b1", "b2"))
        allocation = planner.allocation
        # Every placement must be used by some admitted query's plan.
        from repro.dsps.plan import extract_plan

        used = set()
        for query_id in allocation.admitted_queries:
            query = catalog.get_query(query_id)
            plan = extract_plan(catalog, allocation, query.result_stream)
            for node in plan.nodes():
                if node.operator_id is not None:
                    used.add((node.host, node.operator_id))
        assert allocation.placements == used
