"""Golden regression test for the scenario-matrix fingerprints.

The quick-scale sweep — every registered regime (plus the compound
flash-crowd-during-partition expression) across all four registry
planners — commits one determinism fingerprint per cell to
``tests/fixtures/golden_matrix.json``.  Any behavioural drift in the
workload generators, the harness, or a planner changes a fingerprint and
fails loudly here; the CI ``scenario-matrix`` job checks the same
fixture through the CLI.

When a change is intentional, regenerate the fixture and commit it::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_matrix.py -q

Regeneration is idempotent by construction (no wall-clock enters an
artifact), which ``test_golden_matrix_regeneration_is_idempotent``
asserts by generating the fixture twice and comparing bytes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.matrix import DEFAULT_PLANNERS, generate_golden_matrix
from repro.scenarios import MATRIX_REGIMES

FIXTURE = Path(__file__).parent / "fixtures" / "golden_matrix.json"


@pytest.mark.slow
def test_golden_matrix_fingerprints_match_fixture():
    observed = generate_golden_matrix(workers=4)

    if os.environ.get("REGEN_GOLDEN"):
        FIXTURE.parent.mkdir(parents=True, exist_ok=True)
        FIXTURE.write_text(observed, encoding="utf-8")
        pytest.skip(f"regenerated {FIXTURE}")

    expected = FIXTURE.read_text(encoding="utf-8")
    assert observed == expected, (
        "scenario-matrix fingerprints drifted from the committed fixture; "
        "if this change is intentional, regenerate with REGEN_GOLDEN=1 and "
        "commit the new fixture"
    )


@pytest.mark.slow
def test_golden_matrix_regeneration_is_idempotent():
    # Byte-identical across runs AND across worker counts: nothing
    # wall-clock or scheduling-dependent may enter the fixture.
    first = generate_golden_matrix(workers=4)
    second = generate_golden_matrix(workers=1)
    assert first == second


def test_fixture_covers_the_full_quick_matrix():
    payload = json.loads(FIXTURE.read_text(encoding="utf-8"))
    expected_cells = {
        f"{scenario}/{planner}/quick"
        for scenario in MATRIX_REGIMES
        for planner in DEFAULT_PLANNERS
    }
    assert set(payload["cells"]) == expected_cells
    for fingerprint in payload["cells"].values():
        assert len(fingerprint) == 64
        int(fingerprint, 16)  # hex sha256
