"""Tests for objective weights and the problem-reduction (scope) step."""

from __future__ import annotations

import pytest

from repro.core.reduction import compute_scope
from repro.core.weights import ObjectiveWeights
from repro.dsps.allocation import Allocation
from tests.conftest import make_catalog, query_over


class TestObjectiveWeights:
    def test_paper_default_normalisation(self, tiny_catalog):
        weights = ObjectiveWeights.paper_default(tiny_catalog)
        assert weights.admission > weights.cpu
        assert weights.network == pytest.approx(1.0 / tiny_catalog.total_bandwidth_capacity())
        # At the default load_balancing=0.5, CPU and balance weights are equal.
        assert weights.cpu == pytest.approx(weights.balance)

    def test_load_balancing_extremes(self, tiny_catalog):
        pure_cpu = ObjectiveWeights.paper_default(tiny_catalog, load_balancing=0.0)
        assert pure_cpu.balance == 0.0
        assert pure_cpu.cpu > 0.0
        pure_balance = ObjectiveWeights.paper_default(tiny_catalog, load_balancing=1.0)
        assert pure_balance.cpu == 0.0
        assert pure_balance.balance > 0.0

    def test_invalid_load_balancing_rejected(self, tiny_catalog):
        with pytest.raises(ValueError):
            ObjectiveWeights.paper_default(tiny_catalog, load_balancing=1.5)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            ObjectiveWeights(admission=-1.0, network=0.0, cpu=0.0, balance=0.0)

    def test_admission_only(self):
        weights = ObjectiveWeights.admission_only()
        assert weights.network == weights.cpu == weights.balance == 0.0


class TestComputeScope:
    def test_scope_of_single_query(self, tiny_catalog):
        query = tiny_catalog.register_query(query_over("b0", "b1", "b2"))
        allocation = Allocation(tiny_catalog)
        scope = compute_scope(tiny_catalog, allocation, [query])
        assert scope.streams == query.candidate_streams
        assert scope.operators == query.candidate_operators
        assert scope.keep_provided == frozenset()
        assert scope.replanned_queries == frozenset()
        assert scope.new_queries == frozenset({query.query_id})

    def test_overlapping_admitted_query_joins_scope(self, tiny_catalog):
        q1 = tiny_catalog.register_query(query_over("b0", "b1", "b2"))
        q2 = tiny_catalog.register_query(query_over("b0", "b1", "b3"))
        allocation = Allocation(tiny_catalog)
        allocation.admitted_queries.add(q1.query_id)
        allocation.provided[q1.result_stream] = 0
        scope = compute_scope(tiny_catalog, allocation, [q2])
        assert q1.query_id in scope.replanned_queries
        assert q1.result_stream in scope.keep_provided
        assert set(q1.candidate_streams) <= set(scope.streams)

    def test_replanning_disabled(self, tiny_catalog):
        q1 = tiny_catalog.register_query(query_over("b0", "b1", "b2"))
        q2 = tiny_catalog.register_query(query_over("b0", "b1", "b3"))
        allocation = Allocation(tiny_catalog)
        allocation.admitted_queries.add(q1.query_id)
        allocation.provided[q1.result_stream] = 0
        scope = compute_scope(tiny_catalog, allocation, [q2], replan_overlapping=False)
        assert scope.replanned_queries == frozenset()
        assert scope.streams == q2.candidate_streams

    def test_max_replanned_queries_cap(self, tiny_catalog):
        allocation = Allocation(tiny_catalog)
        admitted = []
        for names in (("b0", "b1"), ("b0", "b2"), ("b0", "b3"), ("b1", "b2")):
            q = tiny_catalog.register_query(query_over(*names))
            allocation.admitted_queries.add(q.query_id)
            allocation.provided[q.result_stream] = 0
            admitted.append(q)
        new = tiny_catalog.register_query(query_over("b0", "b1", "b2", "b3"))
        capped = compute_scope(
            tiny_catalog, allocation, [new], max_replanned_queries=2
        )
        assert len(capped.replanned_queries) == 2
        uncapped = compute_scope(
            tiny_catalog, allocation, [new], max_replanned_queries=100
        )
        assert len(uncapped.replanned_queries) == 4

    def test_disjoint_queries_not_replanned(self, tiny_catalog):
        q1 = tiny_catalog.register_query(query_over("b0", "b1"))
        q2 = tiny_catalog.register_query(query_over("b2", "b3"))
        allocation = Allocation(tiny_catalog)
        allocation.admitted_queries.add(q1.query_id)
        allocation.provided[q1.result_stream] = 0
        scope = compute_scope(tiny_catalog, allocation, [q2])
        assert scope.replanned_queries == frozenset()

    def test_requested_streams_helper(self, tiny_catalog):
        q1 = tiny_catalog.register_query(query_over("b0", "b1"))
        q2 = tiny_catalog.register_query(query_over("b0", "b2"))
        allocation = Allocation(tiny_catalog)
        allocation.admitted_queries.add(q1.query_id)
        allocation.provided[q1.result_stream] = 0
        scope = compute_scope(tiny_catalog, allocation, [q2])
        requested = scope.requested_streams(tiny_catalog)
        assert q2.result_stream in requested
        assert q1.result_stream in requested
