"""Property-based tests on the planner's core invariants.

These use hypothesis to generate random (small) workloads and check the
invariants the paper's model guarantees by construction:

* the live allocation always satisfies every constraint group (III.4–III.7),
* admitted queries stay admitted when later queries arrive (IV.9),
* every admitted query has a structurally valid plan (C1–C4), and
* the optimistic bound never admits fewer queries than it did before a new
  submission (monotonicity of the admission curve).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.optimistic import OptimisticBoundPlanner
from repro.core.planner import PlannerConfig, SQPRPlanner
from repro.dsps.plan import extract_plan
from repro.dsps.query import QueryWorkloadItem
from repro.baselines.heuristic import HeuristicPlanner
from tests.conftest import make_catalog

BASE_NAMES = ["b0", "b1", "b2", "b3", "b4"]


def workload_strategy(max_queries: int = 6):
    query = st.sets(st.sampled_from(BASE_NAMES), min_size=2, max_size=3).map(
        lambda names: QueryWorkloadItem(base_names=tuple(sorted(names)))
    )
    return st.lists(query, min_size=1, max_size=max_queries)


common_settings = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestPlannerInvariants:
    @given(workload=workload_strategy())
    @common_settings
    @pytest.mark.slow
    def test_allocation_always_feasible_and_admissions_monotone(self, workload):
        catalog = make_catalog(num_hosts=3, cpu=4.0, num_base=5)
        planner = SQPRPlanner(catalog, config=PlannerConfig(time_limit=1.0))
        admitted_so_far = set()
        for item in workload:
            planner.submit(item)
            # Invariant: no constraint of the model is ever violated.
            assert planner.allocation.validate() == []
            # Invariant (IV.9): previously admitted queries are never dropped.
            assert admitted_so_far <= planner.allocation.admitted_queries
            admitted_so_far = set(planner.allocation.admitted_queries)

    @given(workload=workload_strategy())
    @common_settings
    @pytest.mark.slow
    def test_admitted_queries_have_valid_plans(self, workload):
        catalog = make_catalog(num_hosts=3, cpu=4.0, num_base=5)
        planner = SQPRPlanner(catalog, config=PlannerConfig(time_limit=1.0))
        for item in workload:
            planner.submit(item)
        for query_id in planner.allocation.admitted_queries:
            query = catalog.get_query(query_id)
            plan = extract_plan(catalog, planner.allocation, query.result_stream)
            assert plan.is_valid(catalog)
            assert plan.query_stream == query.result_stream

    @given(workload=workload_strategy())
    @common_settings
    def test_heuristic_allocation_always_feasible(self, workload):
        catalog = make_catalog(num_hosts=3, cpu=4.0, num_base=5)
        planner = HeuristicPlanner(catalog)
        for item in workload:
            planner.submit(item)
            assert planner.allocation.validate() == []

    @given(workload=workload_strategy(max_queries=8))
    @common_settings
    def test_optimistic_bound_cpu_never_exceeds_capacity(self, workload):
        catalog = make_catalog(num_hosts=2, cpu=2.0, num_base=5)
        bound = OptimisticBoundPlanner(catalog)
        previous = 0
        for item in workload:
            bound.submit(item)
            assert bound.cpu_used <= bound.cpu_capacity + 1e-9
            assert bound.num_admitted >= previous
            previous = bound.num_admitted
