"""The ``large`` scenario-matrix scale tier and its KPI tolerance bands.

The large tier runs under a solver time limit, so its cells are excluded
from the golden fingerprint fixture and checked against per-KPI
tolerance bands instead (:func:`repro.scenarios.artifacts.diff_kpi_bands`
/ :func:`repro.experiments.matrix.diff_kpi_reference`).
"""

from __future__ import annotations

import copy

import pytest

from repro.api import PlannerConfig
from repro.experiments.matrix import diff_kpi_reference, run_matrix
from repro.scenarios.artifacts import diff_kpi_bands, kpi_band_payload
from repro.scenarios.matrix import MATRIX_SCALES
from repro.utils.pool import process_backend_available

needs_fork = pytest.mark.skipif(
    not process_backend_available(),
    reason="process backend needs the 'fork' start method",
)


class TestLargeScaleDefinition:
    def test_registered_and_nondeterministic(self):
        scale = MATRIX_SCALES["large"]
        assert not scale.deterministic
        assert scale.tolerance_map()  # has bands to check against

    def test_strictly_bigger_than_medium(self):
        large, medium = MATRIX_SCALES["large"], MATRIX_SCALES["medium"]
        assert large.topology.num_hosts > medium.topology.num_hosts
        assert (
            large.topology.num_base_streams > medium.topology.num_base_streams
        )
        assert large.trace.duration > medium.trace.duration

    def test_other_scales_stay_deterministic(self):
        for name in ("quick", "small", "medium"):
            assert MATRIX_SCALES[name].deterministic
            assert MATRIX_SCALES[name].tolerance_map() == {}


def _large_sweep(backend="serial", workers=1):
    return run_matrix(
        scenarios=["baseline"],
        planners=["heuristic"],
        scales=["large"],
        workers=workers,
        backend=backend,
        planner_config=PlannerConfig(time_limit=0.5),
    )


class TestLargeSweep:
    def test_runs_clean_with_per_cell_artifacts(self, tmp_path):
        sweep = _large_sweep()
        assert sweep.violations() == []
        assert list(sweep.artifacts) == ["baseline/heuristic/large"]
        paths = sweep.write_artifacts(tmp_path)
        assert (tmp_path / "matrix_index.json").exists()
        assert len(paths) == 2

    def test_excluded_from_golden_payload(self):
        sweep = _large_sweep()
        assert sweep.nondeterministic_scales == frozenset({"large"})
        assert sweep.golden_payload()["cells"] == {}
        assert list(sweep.kpi_band_payload()["cells"]) == [
            "baseline/heuristic/large"
        ]

    @needs_fork
    def test_runs_under_process_backend_within_bands(self):
        reference = _large_sweep(backend="serial").kpi_band_payload()
        sweep = _large_sweep(backend="process", workers=2)
        assert sweep.violations() == []
        assert diff_kpi_reference(reference, sweep) == []


class TestKpiBands:
    def _payload(self):
        return _large_sweep().kpi_band_payload()

    def test_self_comparison_is_clean(self):
        sweep = _large_sweep()
        assert diff_kpi_reference(sweep.kpi_band_payload(), sweep) == []

    def test_out_of_band_kpi_reported(self):
        sweep = _large_sweep()
        reference = copy.deepcopy(sweep.kpi_band_payload())
        cell = reference["cells"]["baseline/heuristic/large"]
        cell["admitted"] = cell["admitted"] * 10 + 100
        drift = diff_kpi_reference(reference, sweep)
        assert len(drift) == 1
        assert "out of band" in drift[0]
        assert "'admitted'" in drift[0]

    def test_within_band_deviation_tolerated(self):
        sweep = _large_sweep()
        reference = copy.deepcopy(sweep.kpi_band_payload())
        cell = reference["cells"]["baseline/heuristic/large"]
        # 10% band on 'admitted': a 5% nudge stays inside.
        cell["admitted"] = cell["admitted"] * 1.05
        assert diff_kpi_reference(reference, sweep) == []

    def test_missing_and_unexpected_cells_reported(self):
        sweep = _large_sweep()
        artifacts = {
            cid: artifact
            for cid, artifact in sweep.artifacts.items()
            if artifact.scale == "large"
        }
        reference = {"cells": {"ghost/heuristic/large": {"admitted": 1.0}}}
        drift = diff_kpi_bands(
            reference, artifacts, MATRIX_SCALES["large"].tolerance_map()
        )
        assert any("missing from this sweep" in line for line in drift)
        assert any("not present in the KPI reference" in line for line in drift)

    def test_near_zero_reference_uses_absolute_floor(self):
        sweep = _large_sweep()
        artifacts = dict(sweep.artifacts)
        payload = kpi_band_payload(artifacts)
        cell = payload["cells"]["baseline/heuristic/large"]
        real_dropped = cell["dropped"]
        cell["dropped"] = 0.0
        drift = diff_kpi_bands(
            payload, artifacts, {"dropped": 0.25}
        )
        # band = 0.25 * max(1, 0) = 0.25 — clean only if truly near zero.
        assert (real_dropped <= 0.25) == (drift == [])
