"""Direct coverage of :class:`repro.dsps.network.NetworkTopology` — pair
validation, symmetric/asymmetric capacities, scaling — plus the catalog's
link/WAN capacity plumbing (asymmetric round-trips, partitions, drift).

Before the federated refactor the topology was only covered indirectly
through planner behaviour; these tests pin its contract explicitly.
"""

from __future__ import annotations

import pytest

from repro.dsps.catalog import SystemCatalog
from repro.dsps.network import NetworkTopology
from repro.exceptions import CatalogError


class TestPairValidation:
    def test_rejects_empty_topology(self):
        with pytest.raises(CatalogError):
            NetworkTopology(0, 100.0)

    def test_rejects_negative_default_capacity(self):
        with pytest.raises(Exception):
            NetworkTopology(2, -1.0)

    @pytest.mark.parametrize("pair", [(-1, 0), (0, -1), (3, 0), (0, 3)])
    def test_rejects_out_of_range_hosts(self, pair):
        topo = NetworkTopology(3, 100.0)
        with pytest.raises(CatalogError):
            topo.capacity(*pair)
        with pytest.raises(CatalogError):
            topo.set_capacity(*pair, 10.0)

    def test_self_loop_is_zero(self):
        topo = NetworkTopology(3, 100.0)
        assert topo.capacity(1, 1) == 0.0

    def test_site_assignment_must_cover_all_hosts(self):
        with pytest.raises(CatalogError):
            NetworkTopology(3, 100.0, sites=[0, 1])
        with pytest.raises(CatalogError):
            NetworkTopology(2, 100.0, sites=[0, -1])


class TestCapacities:
    def test_default_applies_to_unset_pairs(self):
        topo = NetworkTopology(3, 100.0)
        assert topo.capacity(0, 1) == 100.0
        assert topo.capacity(2, 0) == 100.0

    def test_symmetric_set_capacity_round_trip(self):
        topo = NetworkTopology(3, 100.0)
        topo.set_capacity(0, 1, 42.0)
        assert topo.capacity(0, 1) == 42.0
        assert topo.capacity(1, 0) == 42.0
        assert topo.capacity(0, 2) == 100.0

    def test_asymmetric_set_capacity_round_trip(self):
        """WAN up/down links differ: symmetric=False leaves the reverse
        direction at its previous value."""
        topo = NetworkTopology(3, 100.0)
        topo.set_capacity(0, 1, 80.0, symmetric=False)
        assert topo.capacity(0, 1) == 80.0
        assert topo.capacity(1, 0) == 100.0
        topo.set_capacity(1, 0, 8.0, symmetric=False)
        assert topo.capacity(0, 1) == 80.0
        assert topo.capacity(1, 0) == 8.0

    def test_pairs_enumerates_all_ordered_distinct_pairs(self):
        topo = NetworkTopology(3, 100.0)
        assert sorted(topo.pairs()) == [
            (0, 1), (0, 2), (1, 0), (1, 2), (2, 0), (2, 1),
        ]


class TestSitesAndWan:
    def build(self):
        return NetworkTopology(
            4, 100.0, sites=[0, 0, 1, 1], default_wan_capacity=50.0
        )

    def test_site_queries(self):
        topo = self.build()
        assert topo.num_sites == 2
        assert topo.sites == (0, 1)
        assert topo.site_of(0) == 0
        assert topo.site_of(3) == 1
        assert topo.hosts_in_site(1) == (2, 3)
        assert sorted(topo.site_pairs()) == [(0, 1), (1, 0)]

    def test_flat_topology_has_one_site_and_no_wan(self):
        topo = NetworkTopology(3, 100.0)
        assert topo.num_sites == 1
        assert topo.site_of(2) == 0
        with pytest.raises(CatalogError):
            topo.wan_capacity(0, 1)  # site 1 does not exist

    def test_wan_default_and_overrides(self):
        topo = self.build()
        assert topo.wan_capacity(0, 1) == 50.0
        assert topo.wan_capacity(0, 0) is None  # intra-site: no gateway
        topo.set_wan_capacity(0, 1, 30.0)
        assert topo.wan_capacity(0, 1) == 30.0
        assert topo.wan_capacity(1, 0) == 30.0

    def test_asymmetric_wan_capacities(self):
        topo = self.build()
        topo.set_wan_capacity(0, 1, 40.0, symmetric=False)
        assert topo.wan_capacity(0, 1) == 40.0
        assert topo.wan_capacity(1, 0) == 50.0

    def test_wan_rejects_unknown_sites_and_self_pair(self):
        topo = self.build()
        with pytest.raises(CatalogError):
            topo.set_wan_capacity(0, 7, 10.0)
        with pytest.raises(CatalogError):
            topo.set_wan_capacity(0, 0, 10.0)

    def test_unconstrained_wan_by_default(self):
        topo = NetworkTopology(4, 100.0, sites=[0, 0, 1, 1])
        assert topo.wan_capacity(0, 1) is None


class TestScaled:
    def test_scaled_multiplies_links_and_wan_and_keeps_sites(self):
        topo = NetworkTopology(
            4, 100.0, sites=[0, 0, 1, 1], default_wan_capacity=50.0
        )
        topo.set_capacity(0, 1, 40.0, symmetric=False)
        topo.set_wan_capacity(0, 1, 30.0, symmetric=False)
        clone = topo.scaled(2.0)
        assert clone.default_capacity == 200.0
        assert clone.capacity(0, 1) == 80.0
        assert clone.capacity(1, 0) == 200.0  # default, scaled
        assert clone.wan_capacity(0, 1) == 60.0
        assert clone.wan_capacity(1, 0) == 100.0  # default WAN, scaled
        assert clone.site_of(2) == 1
        # The original is untouched.
        assert topo.capacity(0, 1) == 40.0
        assert topo.wan_capacity(0, 1) == 30.0

    def test_scaled_without_wan_stays_unconstrained(self):
        topo = NetworkTopology(2, 100.0)
        assert topo.scaled(3.0).default_capacity == 300.0

    def test_scaled_rejects_non_positive_factor(self):
        topo = NetworkTopology(2, 100.0)
        with pytest.raises(Exception):
            topo.scaled(0.0)


class TestCatalogPlumbing:
    def build_catalog(self):
        catalog = SystemCatalog(default_wan_capacity=60.0)
        for i in range(4):
            catalog.add_host(8.0, 400.0, site=i // 2)
        return catalog

    def test_set_link_capacity_symmetric_default(self):
        catalog = self.build_catalog()
        catalog.set_link_capacity(0, 1, 120.0)
        assert catalog.link_capacity(0, 1) == 120.0
        assert catalog.link_capacity(1, 0) == 120.0

    def test_set_link_capacity_asymmetric(self):
        """The satellite fix: asymmetric capacities survive the catalog
        round-trip and its topology materialisation."""
        catalog = self.build_catalog()
        catalog.set_link_capacity(0, 1, 120.0, symmetric=False)
        assert catalog.link_capacity(0, 1) == 120.0
        assert catalog.link_capacity(1, 0) == 1000.0
        topo = catalog.topology()
        assert topo.capacity(0, 1) == 120.0
        assert topo.capacity(1, 0) == 1000.0

    def test_topology_carries_sites_and_wan(self):
        catalog = self.build_catalog()
        catalog.set_wan_capacity(0, 1, 45.0, symmetric=False)
        topo = catalog.topology()
        assert topo.num_sites == 2
        assert topo.site_of(3) == 1
        assert topo.wan_capacity(0, 1) == 45.0
        assert topo.wan_capacity(1, 0) == 60.0

    def test_cross_site_link_capacity_capped_at_effective_wan(self):
        catalog = self.build_catalog()
        # Intra-site pair: full link capacity.
        assert catalog.link_capacity(0, 1) == 1000.0
        # Cross-site pair: capped at the gateway.
        assert catalog.link_capacity(0, 2) == 60.0
        catalog.set_wan_drift(0.5)
        assert catalog.link_capacity(0, 2) == 30.0
        catalog.partition_site(1)
        assert catalog.link_capacity(0, 2) == 0.0
        catalog.heal_site(1)
        catalog.set_wan_drift(1.0)
        assert catalog.link_capacity(0, 2) == 60.0

    def test_partition_state_round_trip(self):
        catalog = self.build_catalog()
        assert catalog.partitioned_sites == []
        catalog.partition_site(1)
        assert catalog.is_site_partitioned(1)
        assert catalog.effective_wan_capacity(0, 1) == 0.0
        catalog.heal_site(1)
        assert not catalog.is_site_partitioned(1)
        assert catalog.effective_wan_capacity(0, 1) == 60.0
        with pytest.raises(CatalogError):
            catalog.partition_site(7)

    def test_wan_capacity_none_means_unconstrained(self):
        catalog = SystemCatalog()
        for i in range(4):
            catalog.add_host(8.0, 400.0, site=i // 2)
        assert catalog.wan_capacity(0, 1) is None
        assert catalog.effective_wan_capacity(0, 1) is None
        # A partition still forces the gateway shut.
        catalog.partition_site(0)
        assert catalog.effective_wan_capacity(0, 1) == 0.0
