"""Tests for the churn timeline experiment driver and its figure/JSON
outputs."""

from __future__ import annotations

import json

import pytest

from repro.dsps.query import DecompositionMode
from repro.exceptions import SimulationError
from repro.experiments.figures import fig8_churn_timeline
from repro.experiments.timeline import (
    _main,
    export_metrics_json,
    run_churn_experiment,
    run_named_churn_experiment,
    summarise,
    timeline_figure,
)
from repro.workloads.churn import ChurnTraceConfig, build_churn_schedule
from repro.workloads.scenarios import (
    SimulationScenarioConfig,
    build_simulation_scenario,
)


def tiny_scenario():
    return build_simulation_scenario(
        SimulationScenarioConfig(
            num_hosts=3,
            num_base_streams=8,
            host_cpu_capacity=5.0,
            host_bandwidth=150.0,
            decomposition=DecompositionMode.CANONICAL,
            seed=3,
        )
    )


QUICK_TRACE = ChurnTraceConfig(
    duration=25.0, arrival_rate=0.4, arities=(2,), seed=4
)


class TestRunChurnExperiment:
    def test_runs_every_planner_on_fresh_catalogs(self):
        scenario = tiny_scenario()
        results = run_churn_experiment(
            ["heuristic", "optimistic"], scenario, trace=QUICK_TRACE
        )
        assert set(results) == {"heuristic", "optimistic"}
        for sim in results.values():
            assert sim.counters["arrivals"] > 0
            assert sim.final_violations == []
        # Same schedule for everyone: identical arrival counts.
        counts = {sim.counters["arrivals"] for sim in results.values()}
        assert len(counts) == 1

    def test_trace_and_schedule_are_exclusive(self):
        scenario = tiny_scenario()
        schedule = build_churn_schedule(scenario, QUICK_TRACE)
        with pytest.raises(SimulationError):
            run_churn_experiment(
                ["heuristic"], scenario, trace=QUICK_TRACE, schedule=schedule
            )

    def test_prebuilt_schedule_accepted(self):
        scenario = tiny_scenario()
        schedule = build_churn_schedule(scenario, QUICK_TRACE)
        results = run_churn_experiment(["heuristic"], scenario, schedule=schedule)
        assert results["heuristic"].counters["arrivals"] == schedule.num_arrivals

    def test_named_experiment_and_unknown_name(self):
        from repro.exceptions import WorkloadError

        scenario = tiny_scenario()
        results = run_named_churn_experiment(
            ["heuristic"], scenario, "steady_churn", record_every=4
        )
        assert results["heuristic"].counters["arrivals"] > 0
        with pytest.raises(WorkloadError):
            run_named_churn_experiment(["heuristic"], scenario, "nope")


class TestOutputs:
    def test_timeline_figure_series(self):
        scenario = tiny_scenario()
        results = run_churn_experiment(
            ["heuristic", "optimistic"], scenario, trace=QUICK_TRACE
        )
        figure = timeline_figure(results, title="test")
        assert "heuristic_active" in figure.series
        assert "optimistic_active" in figure.series
        assert "time" in figure.series
        assert len(figure.series["heuristic_active"]) == len(figure.series["time"])
        assert figure.to_text()  # renders

    def test_export_metrics_json(self, tmp_path):
        scenario = tiny_scenario()
        results = run_churn_experiment(["heuristic"], scenario, trace=QUICK_TRACE)
        out = tmp_path / "metrics.json"
        export_metrics_json(results, str(out))
        payload = json.loads(out.read_text())
        assert payload["heuristic"]["counters"]["arrivals"] > 0
        assert payload["heuristic"]["ticks"]

    def test_summarise_rows(self):
        scenario = tiny_scenario()
        results = run_churn_experiment(["heuristic"], scenario, trace=QUICK_TRACE)
        rows = summarise(results)
        assert rows[0][0] == "heuristic"
        assert len(rows[0]) == 6

    def test_fig8_churn_timeline(self):
        figure = fig8_churn_timeline(
            scenario=tiny_scenario(),
            scenario_name="steady_churn",
            planners=("heuristic",),
            record_every=5,
        )
        assert figure.figure == "Fig 8"
        assert "heuristic_active" in figure.series

    def test_cli_quick_mode(self, tmp_path, capsys):
        out = tmp_path / "CHURN_metrics.json"
        _main(
            [
                "--quick",
                "--scenario",
                "steady_churn",
                "--planners",
                "heuristic",
                "--out",
                str(out),
            ]
        )
        assert out.exists()
        captured = capsys.readouterr()
        assert "churn scenario" in captured.out
