"""Edge-case tests for the service metrics instruments.

Quantiles on empty and single-sample histograms, constructor and input
validation, overflow behaviour, and counter/gauge/registry snapshot
stability under concurrent writers.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.service.metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
)


# ----------------------------------------------------------------- histogram
def test_empty_histogram_reports_zeros():
    hist = LatencyHistogram("empty")
    assert hist.count == 0
    assert hist.mean == 0.0
    for q in (0.0, 0.5, 0.99, 1.0):
        assert hist.quantile(q) == 0.0
    snapshot = hist.snapshot()
    assert snapshot == {
        "count": 0,
        "sum": 0.0,
        "mean": 0.0,
        "min": 0.0,
        "max": 0.0,
        "p50": 0.0,
        "p90": 0.0,
        "p99": 0.0,
    }


def test_single_sample_pins_every_quantile():
    hist = LatencyHistogram("single")
    hist.observe(0.042)
    assert hist.count == 1
    assert hist.mean == pytest.approx(0.042)
    # Min/max clipping collapses every quantile onto the lone sample.
    for q in (0.0, 0.25, 0.5, 0.99, 1.0):
        assert hist.quantile(q) == pytest.approx(0.042)
    snapshot = hist.snapshot()
    assert snapshot["min"] == pytest.approx(0.042)
    assert snapshot["max"] == pytest.approx(0.042)
    assert snapshot["p99"] == pytest.approx(0.042)


def test_quantile_outside_unit_interval_rejected():
    hist = LatencyHistogram("bounds")
    for q in (-0.1, 1.1):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            hist.quantile(q)


def test_constructor_validates_bucket_geometry():
    for kwargs in (
        {"lowest": 0.0},
        {"lowest": -1.0},
        {"lowest": 2.0, "highest": 1.0},
        {"growth": 1.0},
        {"growth": 0.5},
    ):
        with pytest.raises(ValueError):
            LatencyHistogram("bad", **kwargs)


def test_negative_observation_clamps_to_zero():
    hist = LatencyHistogram("clamp")
    hist.observe(-5.0)
    assert hist.count == 1
    assert hist.snapshot()["min"] == 0.0
    assert hist.quantile(1.0) == 0.0


def test_overflow_samples_land_in_the_tail():
    hist = LatencyHistogram("overflow", lowest=1e-3, highest=1.0)
    hist.observe(0.01)
    hist.observe(12345.0)  # beyond the highest bound
    assert hist.count == 2
    assert hist.quantile(1.0) == pytest.approx(12345.0)
    assert hist.snapshot()["max"] == pytest.approx(12345.0)


def test_quantiles_are_monotone_and_bounded_by_observations():
    hist = LatencyHistogram("mono")
    samples = [0.001 * (i + 1) for i in range(100)]
    for sample in samples:
        hist.observe(sample)
    quantiles = [hist.quantile(q / 20.0) for q in range(21)]
    assert quantiles == sorted(quantiles)
    assert quantiles[0] >= min(samples)
    assert quantiles[-1] <= max(samples)


# ------------------------------------------------------------ counter / gauge
def test_counter_rejects_negative_increments():
    counter = Counter("mono")
    with pytest.raises(ValueError, match="only go up"):
        counter.inc(-1)
    assert counter.value == 0


def _hammer(threads, target):
    workers = [threading.Thread(target=target) for _ in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()


def test_counter_is_exact_under_concurrent_writers():
    counter = Counter("contended")
    per_thread, threads = 2000, 8

    def bump():
        for _ in range(per_thread):
            counter.inc()

    _hammer(threads, bump)
    assert counter.value == per_thread * threads


def test_gauge_inc_dec_cancel_under_concurrency():
    gauge = Gauge("depth")
    per_thread, threads = 2000, 8

    def wobble():
        for _ in range(per_thread):
            gauge.inc()
            gauge.dec()

    _hammer(threads, wobble)
    assert gauge.value == pytest.approx(0.0)
    gauge.set(5.5)
    assert gauge.value == 5.5


# ------------------------------------------------------------------ registry
def test_registry_returns_the_same_instrument_per_name():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")
    # Distinct namespaces: a counter and a gauge may share a name.
    assert registry.counter("x") is not registry.gauge("x")


def test_registry_snapshot_is_consistent_under_concurrent_writers():
    registry = MetricsRegistry()
    stop = threading.Event()
    errors = []

    def writer(index):
        counter = registry.counter(f"c{index}")
        gauge = registry.gauge(f"g{index}")
        hist = registry.histogram(f"h{index}")
        while not stop.is_set():
            counter.inc()
            gauge.inc(0.5)
            hist.observe(0.01)

    def reader():
        try:
            last = {}
            while not stop.is_set():
                snapshot = registry.snapshot()
                # Counters never move backwards between snapshots.
                for name, value in snapshot["counters"].items():
                    assert value >= last.get(name, 0)
                    last[name] = value
                for payload in snapshot["histograms"].values():
                    assert payload["count"] >= 0
                    assert payload["min"] <= payload["max"]
                json.dumps(snapshot)  # always serialisable
        except Exception as exc:  # surfaced after join
            errors.append(exc)

    writers = [
        threading.Thread(target=writer, args=(i,)) for i in range(4)
    ]
    watcher = threading.Thread(target=reader)
    for thread in writers + [watcher]:
        thread.start()
    timer = threading.Timer(0.5, stop.set)
    timer.start()
    for thread in writers + [watcher]:
        thread.join()
    timer.cancel()
    assert not errors

    final = registry.snapshot()
    assert set(final["counters"]) == {f"c{i}" for i in range(4)}
    for index in range(4):
        observed = final["histograms"][f"h{index}"]["count"]
        assert observed == final["counters"][f"c{index}"]


def test_registry_to_json_round_trips():
    registry = MetricsRegistry()
    registry.counter("admitted").inc(3)
    registry.gauge("queue").set(2.0)
    registry.histogram("latency").observe(0.25)
    payload = json.loads(registry.to_json(indent=2))
    assert payload["counters"]["admitted"] == 3
    assert payload["gauges"]["queue"] == 2.0
    assert payload["histograms"]["latency"]["count"] == 1
