"""Site-level dynamics through the engine and the simulation harness:
partitions evict exactly the straddling queries, healing restores the WAN,
WAN drift drains overloaded gateways, and the harness drives it all with
per-event delta validation and stable counters."""

from __future__ import annotations

import pytest

from repro.api import PlannerConfig, create_planner
from repro.dsps.engine import ClusterEngine
from repro.exceptions import CatalogError
from repro.sim import SimulationHarness
from repro.sim.events import (
    EventSchedule,
    QueryArrival,
    SitePartition,
    SiteRecovery,
    WanDrift,
)
from repro.workloads.churn import CHURN_SCENARIOS, ChurnTraceConfig, build_churn_schedule
from repro.workloads.scenarios import (
    SimulationScenarioConfig,
    build_simulation_scenario,
)
from tests.test_federated_planner import make_federated_catalog, stream_names_of_site
from tests.conftest import query_over


def federated_scenario(num_sites: int = 2):
    from repro.dsps.query import DecompositionMode

    return build_simulation_scenario(
        SimulationScenarioConfig(
            num_hosts=3 * num_sites,
            num_base_streams=7 * num_sites,
            host_cpu_capacity=6.0,
            host_bandwidth=250.0,
            decomposition=DecompositionMode.CANONICAL,
            num_sites=num_sites,
            wan_capacity=120.0,
            seed=3,
        )
    )


def planner_with_mixed_queries():
    """A federated planner with one query per site plus one cross-site."""
    catalog = make_federated_catalog()
    planner = create_planner(
        "federated:sqpr", catalog, config=PlannerConfig(time_limit=None)
    )
    site0 = stream_names_of_site(catalog, 0)
    site1 = stream_names_of_site(catalog, 1)
    local0 = planner.submit(query_over(*site0[:2])).query.query_id
    local1 = planner.submit(query_over(*site1[:2])).query.query_id
    cross = planner.submit(query_over(site0[0], site1[0])).query.query_id
    return catalog, planner, (local0, local1, cross)


class TestEngineSiteLifecycle:
    def test_partition_evicts_only_straddling_queries(self):
        catalog, planner, (local0, local1, cross) = planner_with_mixed_queries()
        engine = ClusterEngine(catalog, strict=False)
        engine.adopt(planner.allocation, trusted=True)
        report = engine.partition_site(1)
        assert report.site == 1
        assert report.victims == [cross]
        assert report.clean
        assert cross not in engine.allocation.admitted_queries
        assert {local0, local1} <= set(engine.allocation.admitted_queries)
        # No surviving structure crosses the boundary.
        assert engine.allocation.wan_usage() == {}
        assert engine.allocation.validate() == []

    def test_partition_twice_raises(self):
        catalog, _planner, _qids = planner_with_mixed_queries()
        engine = ClusterEngine(catalog, strict=False)
        engine.partition_site(0)
        with pytest.raises(CatalogError):
            engine.partition_site(0)

    def test_heal_requires_partition(self):
        catalog, _planner, _qids = planner_with_mixed_queries()
        engine = ClusterEngine(catalog, strict=False)
        with pytest.raises(CatalogError):
            engine.heal_site(0)
        engine.partition_site(0)
        report = engine.heal_site(0)
        assert report.clean
        assert not catalog.is_site_partitioned(0)

    def test_wan_drift_evicts_queries_on_overloaded_gateways(self):
        catalog, planner, (local0, local1, cross) = planner_with_mixed_queries()
        engine = ClusterEngine(catalog, strict=False)
        engine.adopt(planner.allocation, trusted=True)
        used = sum(planner.allocation.wan_usage().values())
        assert used > 0
        # Drift low enough that the cross-site query no longer fits.
        factor = (used / 2.0) / catalog.wan_capacity(0, 1)
        report = engine.apply_wan_drift(factor)
        assert report.victims == [cross]
        assert report.clean
        assert engine.allocation.wan_usage() == {}
        # Recovery to nominal evicts nothing.
        report = engine.apply_wan_drift(1.0)
        assert report.victims == []
        assert report.clean

    def test_wan_drift_without_overload_is_a_no_op(self):
        catalog, planner, qids = planner_with_mixed_queries()
        engine = ClusterEngine(catalog, strict=False)
        engine.adopt(planner.allocation, trusted=True)
        before = set(engine.allocation.admitted_queries)
        report = engine.apply_wan_drift(0.99)
        assert report.victims == []
        assert set(engine.allocation.admitted_queries) == before

    def test_engine_reset_heals_partitions_and_drift(self):
        catalog, _planner, _qids = planner_with_mixed_queries()
        engine = ClusterEngine(catalog, strict=False)
        engine.partition_site(1)
        catalog.set_wan_drift(0.25)
        engine.reset()
        assert catalog.partitioned_sites == []
        assert catalog.wan_drift == 1.0


class TestHarnessSiteEvents:
    def build_schedule(self, scenario, events):
        return EventSchedule(events=events, seed=5, duration=100.0)

    def test_partition_and_recovery_counters(self):
        scenario = federated_scenario()
        site0 = scenario.site_stream_names(0)
        site1 = scenario.site_stream_names(1)
        from repro.dsps.query import QueryWorkloadItem

        events = [
            QueryArrival(
                time=1.0,
                item=QueryWorkloadItem(base_names=tuple(site0[:2])),
                arrival_index=0,
            ),
            QueryArrival(
                time=2.0,
                item=QueryWorkloadItem(base_names=(site0[0], site1[0])),
                arrival_index=1,
            ),
            SitePartition(time=10.0, site=1),
            SiteRecovery(time=30.0, site=1),
            WanDrift(time=40.0, factor=0.5),
            WanDrift(time=50.0, factor=1.0),
        ]
        schedule = self.build_schedule(scenario, events)
        planner = create_planner(
            "federated:sqpr",
            scenario.build_catalog(),
            config=PlannerConfig(time_limit=None),
        )
        result = SimulationHarness(planner).run(schedule)
        counters = result.counters
        assert counters["site_partitions"] == 1
        assert counters["site_recoveries"] == 1
        assert counters["wan_drift_events"] == 2
        # The cross-site query was evicted at the cut (and possibly
        # re-admitted inside one side).
        assert counters["evicted"] >= 1
        assert result.final_violations == []

    @pytest.mark.parametrize("planner_name", ["heuristic", "federated:sqpr"])
    def test_site_partition_scenario_deterministic(self, planner_name):
        scenario = federated_scenario()
        config = CHURN_SCENARIOS["site_partition"][1](17)
        schedule = build_churn_schedule(scenario, config)
        assert schedule.counts_by_kind().get("SitePartition", 0) == 1
        fingerprints = []
        for _run in range(2):
            planner = create_planner(
                planner_name,
                scenario.build_catalog(),
                config=PlannerConfig(time_limit=None),
            )
            result = SimulationHarness(planner).run(schedule)
            assert result.final_violations == []
            fingerprints.append(result.fingerprint())
        assert fingerprints[0] == fingerprints[1]

    def test_wan_stress_scenario_keeps_invariants_in_both_modes(self):
        scenario = federated_scenario()
        config = CHURN_SCENARIOS["wan_stress"][1](23)
        schedule = build_churn_schedule(scenario, config)
        assert schedule.counts_by_kind().get("WanDrift", 0) > 0
        results = []
        for mode in ("delta", "full"):
            planner = create_planner(
                "federated:heuristic",
                scenario.build_catalog(),
                config=PlannerConfig(time_limit=None),
            )
            result = SimulationHarness(planner, validation_mode=mode).run(schedule)
            assert result.final_violations == []
            results.append(result.fingerprint())
        # Delta validation is a pure optimisation, event for event.
        assert results[0] == results[1]

    def test_single_site_scenarios_generate_no_site_events(self):
        scenario = federated_scenario(num_sites=1)
        for name in ("site_partition", "wan_stress"):
            config = CHURN_SCENARIOS[name][1](3)
            schedule = build_churn_schedule(scenario, config)
            counts = schedule.counts_by_kind()
            assert counts.get("SitePartition", 0) == 0
            assert counts.get("WanDrift", 0) == 0

    def test_site_locality_draws_from_one_site(self):
        scenario = federated_scenario()
        config = ChurnTraceConfig(
            duration=60.0, arrival_rate=0.5, site_locality=1.0, seed=9
        )
        schedule = build_churn_schedule(scenario, config)
        site_universes = [
            set(scenario.site_stream_names(site))
            for site in range(scenario.num_sites)
        ]
        local = 0
        for event in schedule:
            if isinstance(event, QueryArrival):
                names = set(event.item.base_names)
                local += any(names <= universe for universe in site_universes)
        assert schedule.num_arrivals > 0
        assert local == schedule.num_arrivals
