"""Tests for the Zipf sampler, workload generator and scenarios."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import WorkloadError
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.scenarios import (
    ClusterScenarioConfig,
    SimulationScenarioConfig,
    build_cluster_scenario,
    build_simulation_scenario,
)
from repro.workloads.zipf import ZipfSampler


class TestZipfSampler:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(10, 1.0, random_state=0)
        assert sampler.probabilities.sum() == pytest.approx(1.0)

    def test_zero_exponent_is_uniform(self):
        sampler = ZipfSampler(4, 0.0, random_state=0)
        assert np.allclose(sampler.probabilities, 0.25)

    def test_higher_exponent_is_more_skewed(self):
        flat = ZipfSampler(100, 0.5, random_state=0).probabilities[0]
        skewed = ZipfSampler(100, 2.0, random_state=0).probabilities[0]
        assert skewed > flat

    def test_samples_within_range(self):
        sampler = ZipfSampler(7, 1.0, random_state=1)
        samples = sampler.sample_many(500)
        assert min(samples) >= 0
        assert max(samples) < 7

    def test_sample_distinct(self):
        sampler = ZipfSampler(5, 1.0, random_state=1)
        distinct = sampler.sample_distinct(5)
        assert sorted(distinct) == [0, 1, 2, 3, 4]

    def test_sample_distinct_too_many_rejected(self):
        sampler = ZipfSampler(3, 1.0, random_state=1)
        with pytest.raises(WorkloadError):
            sampler.sample_distinct(4)

    def test_determinism(self):
        a = ZipfSampler(50, 1.0, random_state=3).sample_many(20)
        b = ZipfSampler(50, 1.0, random_state=3).sample_many(20)
        assert a == b

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(0, 1.0)
        with pytest.raises(ValueError):
            ZipfSampler(5, -1.0)

    @given(exponent=st.floats(min_value=0.0, max_value=3.0, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_rank_zero_is_most_likely(self, exponent):
        sampler = ZipfSampler(20, exponent, random_state=0)
        probabilities = sampler.probabilities
        assert probabilities[0] == pytest.approx(max(probabilities))


class TestWorkloadGenerator:
    def test_generates_requested_number(self):
        spec = WorkloadSpec(num_queries=30, arities=(2, 3, 4), zipf_exponent=1.0)
        generator = WorkloadGenerator([f"b{i}" for i in range(20)], spec, random_state=0)
        items = generator.generate()
        assert len(items) == 30

    def test_equal_arity_mix(self):
        spec = WorkloadSpec(num_queries=30, arities=(2, 3, 4), zipf_exponent=1.0)
        generator = WorkloadGenerator([f"b{i}" for i in range(20)], spec, random_state=0)
        arities = [item.arity for item in generator.generate()]
        assert arities.count(2) == arities.count(3) == arities.count(4) == 10

    def test_base_streams_are_distinct_within_query(self):
        spec = WorkloadSpec(num_queries=50, arities=(4,), zipf_exponent=2.0)
        generator = WorkloadGenerator([f"b{i}" for i in range(10)], spec, random_state=0)
        for item in generator.generate():
            assert len(set(item.base_names)) == item.arity

    def test_determinism_given_seed(self):
        spec = WorkloadSpec(num_queries=10, arities=(2, 3), zipf_exponent=1.0)
        names = [f"b{i}" for i in range(15)]
        a = WorkloadGenerator(names, spec, random_state=5).generate()
        b = WorkloadGenerator(names, spec, random_state=5).generate()
        assert [i.base_names for i in a] == [i.base_names for i in b]

    def test_zipf_skew_increases_overlap(self):
        names = [f"b{i}" for i in range(50)]
        spec_flat = WorkloadSpec(num_queries=60, arities=(2,), zipf_exponent=0.0)
        spec_skew = WorkloadSpec(num_queries=60, arities=(2,), zipf_exponent=2.0)
        flat = WorkloadGenerator(names, spec_flat, random_state=1).generate()
        skew = WorkloadGenerator(names, spec_skew, random_state=1).generate()
        distinct_flat = len({item.base_names for item in flat})
        distinct_skew = len({item.base_names for item in skew})
        assert distinct_skew < distinct_flat

    def test_batches(self):
        spec = WorkloadSpec(num_queries=10, arities=(2,), zipf_exponent=0.0)
        generator = WorkloadGenerator([f"b{i}" for i in range(10)], spec, random_state=0)
        batches = generator.generate_batches(3)
        assert [len(b) for b in batches] == [3, 3, 3, 1]

    def test_invalid_specs_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(num_queries=-1)
        with pytest.raises(WorkloadError):
            WorkloadSpec(num_queries=1, arities=(1,))
        with pytest.raises(WorkloadError):
            WorkloadGenerator([], WorkloadSpec(num_queries=1), random_state=0)
        with pytest.raises(WorkloadError):
            WorkloadGenerator(
                ["b0"], WorkloadSpec(num_queries=1, arities=(2,)), random_state=0
            )


class TestScenarios:
    def test_simulation_catalog_structure(self):
        scenario = build_simulation_scenario(
            SimulationScenarioConfig(num_hosts=5, num_base_streams=20)
        )
        catalog = scenario.build_catalog()
        assert catalog.num_hosts == 5
        assert len(catalog.streams.base_streams) == 20
        # Base streams are spread over all hosts (round-robin).
        hosts_used = {min(catalog.base_hosts_of(s.stream_id)) for s in catalog.streams.base_streams}
        assert hosts_used == set(range(5))

    def test_cluster_scenario_defaults(self):
        scenario = build_cluster_scenario(ClusterScenarioConfig(num_hosts=4, num_base_streams=16))
        catalog = scenario.build_catalog()
        assert catalog.num_hosts == 4
        assert catalog.hosts.get(0).bandwidth_capacity == pytest.approx(10.0)

    def test_build_catalog_is_reproducible(self):
        scenario = build_simulation_scenario(
            SimulationScenarioConfig(num_hosts=4, num_base_streams=12)
        )
        a = scenario.build_catalog()
        b = scenario.build_catalog()
        for stream in a.streams.base_streams:
            assert a.base_hosts_of(stream.stream_id) == b.base_hosts_of(stream.stream_id)

    def test_workload_is_reproducible(self):
        scenario = build_simulation_scenario(
            SimulationScenarioConfig(num_hosts=4, num_base_streams=12)
        )
        assert [i.base_names for i in scenario.workload(8)] == [
            i.base_names for i in scenario.workload(8)
        ]

    def test_scaling_helpers(self):
        scenario = build_simulation_scenario(
            SimulationScenarioConfig(num_hosts=4, num_base_streams=12)
        )
        more_hosts = scenario.with_hosts(9)
        assert more_hosts.build_catalog().num_hosts == 9
        richer = scenario.with_resources(cpu_factor=2.0, bandwidth_factor=10.0)
        assert richer.host_cpu_capacity == pytest.approx(2 * scenario.host_cpu_capacity)
        assert richer.link_capacity == pytest.approx(10 * scenario.link_capacity)
        wider = scenario.with_base_streams(30)
        assert len(wider.build_catalog().streams.base_streams) == 30
