"""Dual-simplex warm starts, Devex pricing and solver counters.

The contract under test: a warm re-solve of a *perturbed* system (changed
bounds and right-hand sides over the same rows/columns) resumed with the
dual simplex returns exactly the optimum a cold primal solve returns, which
in turn matches the dense reference tableau — and steepest-edge (Devex)
pricing reaches the same optimum as Dantzig pricing, including on
degenerate and fixed-variable LPs.  The hypothesis sections drive these
equivalences over random instances; the unit sections pin the counters,
the repair budget and the fallback reporting.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.milp.dense_simplex import solve_lp_dense
from repro.milp.simplex import (
    SimplexBasis,
    SolverCounters,
    SOLVER_COUNTER_FIELDS,
    _repair_warm_start,
    solve_lp_simplex,
)

common_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _random_lp(seed: int, n: int = 10, m_ub: int = 6, m_eq: int = 2):
    """A bounded LP with a guaranteed-feasible interior point."""
    rng = np.random.default_rng(seed)
    a_ub = rng.normal(size=(m_ub, n)) * (rng.random((m_ub, n)) < 0.6)
    a_eq = rng.normal(size=(m_eq, n)) * (rng.random((m_eq, n)) < 0.7)
    x0 = rng.uniform(0.2, 0.8, n)
    b_ub = a_ub @ x0 + rng.uniform(0.05, 0.8, m_ub)
    b_eq = a_eq @ x0
    c = rng.normal(size=n)
    lower = np.zeros(n)
    upper = np.ones(n)
    return c, a_ub, b_ub, a_eq, b_eq, lower, upper


def _perturb(seed: int, b_ub, b_eq, lower, upper):
    """Random bound tightenings + RHS shifts (may make the LP infeasible)."""
    rng = np.random.default_rng(seed)
    n = len(lower)
    upper2 = upper.copy()
    upper2[rng.integers(0, n, max(1, n // 4))] = 0.0
    b_ub2 = b_ub - rng.uniform(0.0, 0.5, len(b_ub))
    b_eq2 = b_eq + rng.normal(scale=0.1, size=len(b_eq))
    return b_ub2, b_eq2, lower, upper2


def _assert_same_optimum(a, b, label):
    assert a.status == b.status, f"{label}: {a.status} != {b.status}"
    if a.status == "optimal":
        scale = max(1.0, abs(a.objective))
        assert abs(a.objective - b.objective) < 1e-6 * scale, (
            f"{label}: {a.objective} != {b.objective}"
        )


class TestDualWarmEquivalence:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @common_settings
    def test_dual_warm_resolve_matches_cold_and_dense(self, seed):
        """Perturbed re-solve: dual warm == cold primal == dense oracle."""
        c, a_ub, b_ub, a_eq, b_eq, lower, upper = _random_lp(seed)
        base = solve_lp_simplex(c, a_ub, b_ub, a_eq, b_eq, lower, upper)
        assert base.status == "optimal"
        b_ub2, b_eq2, lower2, upper2 = _perturb(seed + 1, b_ub, b_eq, lower, upper)

        cold = solve_lp_simplex(c, a_ub, b_ub2, a_eq, b_eq2, lower2, upper2)
        warm = solve_lp_simplex(
            c, a_ub, b_ub2, a_eq, b_eq2, lower2, upper2, warm_basis=base.basis
        )
        dense = solve_lp_dense(c, a_ub, b_ub2, a_eq, b_eq2, lower2, upper2)
        _assert_same_optimum(cold, warm, "warm vs cold")
        _assert_same_optimum(cold, dense, "cold vs dense")
        assert warm.warm_status in ("dual_resume", "warm_repair", "cold_fallback")

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @common_settings
    def test_method_dual_matches_method_primal(self, seed):
        """The resume method changes the pivot path, never the optimum."""
        c, a_ub, b_ub, a_eq, b_eq, lower, upper = _random_lp(seed)
        base = solve_lp_simplex(c, a_ub, b_ub, a_eq, b_eq, lower, upper)
        b_ub2, b_eq2, lower2, upper2 = _perturb(seed + 2, b_ub, b_eq, lower, upper)
        dual = solve_lp_simplex(
            c, a_ub, b_ub2, a_eq, b_eq2, lower2, upper2,
            warm_basis=base.basis, method="dual",
        )
        primal = solve_lp_simplex(
            c, a_ub, b_ub2, a_eq, b_eq2, lower2, upper2,
            warm_basis=base.basis.copy(), method="primal",
        )
        _assert_same_optimum(dual, primal, "dual vs primal resume")

    def test_typical_perturbation_takes_the_dual_path(self):
        """Mild bound/RHS drift resumes via the dual simplex, not a repair."""
        c, a_ub, b_ub, a_eq, b_eq, lower, upper = _random_lp(42)
        base = solve_lp_simplex(c, a_ub, b_ub, a_eq, b_eq, lower, upper)
        warm = solve_lp_simplex(
            c, a_ub, b_ub * 0.97, a_eq, b_eq, lower, upper, warm_basis=base.basis
        )
        assert warm.status == "optimal"
        assert warm.warm_status == "dual_resume"
        assert warm.counters.dual_resumes == 1
        assert warm.counters.phase1_iterations == 0

    def test_infeasible_perturbation_agrees_with_cold(self):
        """A dual infeasibility certificate matches the cold verdict."""
        n = 6
        c = -np.ones(n)
        a_ub = np.ones((1, n))
        b_ub = np.array([3.0])
        no_eq = np.zeros((0, n))
        lower = np.zeros(n)
        upper = np.ones(n)
        base = solve_lp_simplex(c, a_ub, b_ub, no_eq, np.zeros(0), lower, upper)
        assert base.status == "optimal"
        # Force sum(x) <= -1 with x >= 0: clearly infeasible.
        warm = solve_lp_simplex(
            c, a_ub, np.array([-1.0]), no_eq, np.zeros(0), lower, upper,
            warm_basis=base.basis,
        )
        cold = solve_lp_simplex(
            c, a_ub, np.array([-1.0]), no_eq, np.zeros(0), lower, upper
        )
        assert warm.status == cold.status == "infeasible"


class TestPricingEquivalence:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @common_settings
    def test_devex_matches_dantzig_on_degenerate_lps(self, seed):
        """Fixed variables + duplicated rows (degeneracy): same optimum."""
        c, a_ub, b_ub, a_eq, b_eq, lower, upper = _random_lp(seed)
        rng = np.random.default_rng(seed + 3)
        # Fix a few variables (lb == ub) and duplicate a row to create a
        # degenerate vertex.
        fixed = rng.integers(0, len(c), 3)
        upper = upper.copy()
        upper[fixed] = lower[fixed]
        a_ub = np.vstack([a_ub, a_ub[:1]])
        b_ub = np.concatenate([b_ub, b_ub[:1]])
        devex = solve_lp_simplex(
            c, a_ub, b_ub, a_eq, b_eq, lower, upper, pricing="devex"
        )
        dantzig = solve_lp_simplex(
            c, a_ub, b_ub, a_eq, b_eq, lower, upper, pricing="dantzig"
        )
        _assert_same_optimum(devex, dantzig, "devex vs dantzig")

    def test_partial_pricing_matches_full_on_wide_lp(self):
        """A >256-column model (partial windows active) stays exact."""
        rng = np.random.default_rng(11)
        n, m = 420, 40
        a = np.zeros((m, n))
        for i in range(m):
            cols = rng.choice(n, size=6, replace=False)
            a[i, cols] = rng.normal(size=6)
        x0 = rng.uniform(0, 1, n)
        b = a @ x0 + rng.uniform(0.1, 1.0, m)
        c = rng.normal(size=n)
        no_eq = np.zeros((0, n))
        devex = solve_lp_simplex(
            c, a, b, no_eq, np.zeros(0), np.zeros(n), np.ones(n), pricing="devex"
        )
        dantzig = solve_lp_simplex(
            c, a, b, no_eq, np.zeros(0), np.zeros(n), np.ones(n), pricing="dantzig"
        )
        _assert_same_optimum(devex, dantzig, "partial devex vs dantzig")
        # Partial pricing must have avoided pricing the full span every
        # iteration: fewer full passes than iterations.
        assert devex.counters.pricing_passes < devex.iterations

    def test_unknown_pricing_and_method_raise(self):
        c = np.zeros(2)
        args = (c, np.zeros((0, 2)), np.zeros(0), np.zeros((0, 2)), np.zeros(0),
                np.zeros(2), np.ones(2))
        with pytest.raises(ValueError):
            solve_lp_simplex(*args, pricing="steepest")
        with pytest.raises(ValueError):
            solve_lp_simplex(*args, method="barrier")


class TestCountersAndRepairBudget:
    def test_counters_present_and_consistent(self):
        c, a_ub, b_ub, a_eq, b_eq, lower, upper = _random_lp(1)
        sol = solve_lp_simplex(c, a_ub, b_ub, a_eq, b_eq, lower, upper)
        assert sol.counters is not None
        d = sol.counters.to_dict()
        assert set(d) == set(SOLVER_COUNTER_FIELDS)
        assert all(v >= 0 for v in d.values())
        assert sol.warm_status == ""  # no warm basis was supplied
        # A cold solve of this (infeasible-at-origin) system runs phase 1.
        assert d["phase1_iterations"] > 0
        assert d["refactorisations"] >= 0

    def test_counters_add(self):
        a = SolverCounters(primal_iterations=2, dual_resumes=1)
        b = SolverCounters(primal_iterations=3, bound_flips=4)
        a.add(b)
        assert a.primal_iterations == 5
        assert a.bound_flips == 4
        assert a.dual_resumes == 1

    def test_garbage_basis_reports_cold_fallback(self):
        c, a_ub, b_ub, a_eq, b_eq, lower, upper = _random_lp(2)
        m = len(b_ub) + len(b_eq)
        num_cols = len(c) + len(b_ub) + m
        garbage = SimplexBasis(
            basic=np.zeros(m, dtype=np.int64),  # singular: one column m times
            at_upper=np.zeros(num_cols, dtype=bool),
        )
        sol = solve_lp_simplex(
            c, a_ub, b_ub, a_eq, b_eq, lower, upper, warm_basis=garbage
        )
        cold = solve_lp_simplex(c, a_ub, b_ub, a_eq, b_eq, lower, upper)
        _assert_same_optimum(cold, sol, "garbage warm vs cold")
        assert sol.warm_status == "cold_fallback"
        assert sol.counters.cold_fallbacks == 1

    def test_repair_budget_is_bounded(self):
        """The composite repair cannot exceed its explicit iteration budget."""

        class _StubEngine:
            m = 10
            iterations = 0
            max_iter = 10_000
            counters = SolverCounters()

            def infeasibility(self):
                return 1.0  # permanently violated

            lb = np.zeros(1)
            ub = np.ones(1)
            num_cols = 1
            basic = np.zeros(1, dtype=np.int64)
            x_basic = np.full(1, 5.0)

            def run(self, cost, phase1=False):
                # Burn the whole allowance the caller granted us.
                self.iterations = self.max_iter
                return "iteration_limit"

            def recompute_basic_values(self):
                pass

            at_upper = np.zeros(1, dtype=bool)

        engine = _StubEngine()
        assert _repair_warm_start(engine, iteration_budget=37) is False
        assert engine.iterations <= 37
        assert engine.counters.repair_iterations == 37
        assert engine.max_iter == 10_000  # restored

    def test_weights_ride_along_on_the_basis(self):
        c, a_ub, b_ub, a_eq, b_eq, lower, upper = _random_lp(4)
        sol = solve_lp_simplex(c, a_ub, b_ub, a_eq, b_eq, lower, upper)
        assert sol.basis is not None
        assert sol.basis.weights is not None
        copied = sol.basis.copy()
        assert copied.weights is not None
        assert copied.weights is not sol.basis.weights
        # Feeding the weights back must not change the optimum.
        warm = solve_lp_simplex(
            c, a_ub, b_ub * 0.98, a_eq, b_eq, lower, upper, warm_basis=copied
        )
        cold = solve_lp_simplex(c, a_ub, b_ub * 0.98, a_eq, b_eq, lower, upper)
        _assert_same_optimum(cold, warm, "weights warm vs cold")


class TestBranchAndBoundIntegration:
    def _knapsack(self, cap, seed=9):
        from repro.milp import Model, ObjectiveSense

        rng = np.random.default_rng(seed)
        values = rng.integers(1, 20, 16)
        weights = rng.integers(1, 10, 16)
        model = Model("knap", ObjectiveSense.MAXIMIZE)
        xs = [model.add_binary(f"x{i}") for i in range(16)]
        model.set_objective(sum(int(v) * x for v, x in zip(values, xs)))
        model.add_constr(sum(int(w) * x for w, x in zip(weights, xs)) <= cap)
        return model

    def test_bnb_children_resume_via_dual_simplex(self):
        from repro.milp.branch_and_bound import BnbOptions, solve_branch_and_bound

        result = solve_branch_and_bound(
            self._knapsack(30), BnbOptions(lp_engine="simplex")
        )
        assert result.lp_counters["dual_resumes"] > 0
        assert result.root_basis is not None

    def test_basis_hint_warm_equals_cold(self):
        from repro.milp.branch_and_bound import BnbOptions, solve_branch_and_bound

        opts = BnbOptions(lp_engine="simplex")
        first = solve_branch_and_bound(self._knapsack(30), opts)
        hinted = self._knapsack(26)
        hinted.set_basis_hint(first.root_basis)
        warm = solve_branch_and_bound(hinted, opts)
        cold = solve_branch_and_bound(self._knapsack(26), opts)
        assert warm.objective == cold.objective
        assert warm.status == cold.status

    def test_warm_start_off_ignores_basis_hint(self):
        from repro.milp.branch_and_bound import BnbOptions, solve_branch_and_bound

        first = solve_branch_and_bound(
            self._knapsack(30), BnbOptions(lp_engine="simplex")
        )
        hinted = self._knapsack(26)
        hinted.set_basis_hint(first.root_basis)
        off = solve_branch_and_bound(
            hinted, BnbOptions(lp_engine="simplex", warm_start=False)
        )
        cold = solve_branch_and_bound(
            self._knapsack(26), BnbOptions(lp_engine="simplex", warm_start=False)
        )
        assert off.objective == cold.objective
        assert off.lp_counters["dual_resumes"] == 0


class TestPlannerBasisStore:
    def test_resubmit_after_eviction_reuses_the_basis(self):
        """A churn-style retire + resubmit hits the incumbent-basis store."""
        from repro.api import PlannerConfig
        from repro.core.planner import SQPRPlanner
        from repro.milp import MilpSolver, SolverBackend
        from tests.conftest import make_catalog, query_over

        catalog = make_catalog(num_hosts=3, cpu=4.0, num_base=4, rate=2.0)
        config = PlannerConfig(
            time_limit=5.0,
            backend=SolverBackend.BRANCH_AND_BOUND,
            validate_after_apply=True,
        )
        # Pin the in-repo simplex so counters/bases flow even where scipy
        # would be auto-selected.
        solver = MilpSolver(
            backend=SolverBackend.BRANCH_AND_BOUND,
            time_limit=5.0,
            lp_engine="simplex",
        )
        planner = SQPRPlanner(catalog, config=config, solver=solver)
        query = catalog.register_query(query_over("b0", "b1"))
        first = planner.submit(query)
        assert first.admitted
        assert planner.reuse_stats["basis_misses"] >= 1
        planner.retire(query.query_id)
        outcome = planner.resubmit(query)
        assert outcome.admitted
        assert outcome.extras["perturbation_resolve"] is True
        assert planner.reuse_stats["basis_hits"] >= 1
        counters = planner.solver_counters()
        assert counters  # the B&B backend reported simplex counters
        assert counters.get("primal_iterations", 0) + counters.get(
            "dual_iterations", 0
        ) > 0

    def test_solver_counters_dedupe_shared_dicts(self):
        from repro.api.base import PlannerStats, PlanningOutcome
        from repro.dsps.query import Query

        stats = PlannerStats()
        query = Query(
            query_id=1,
            result_stream=0,
            base_streams=frozenset(),
            candidate_streams=frozenset(),
            candidate_operators=frozenset(),
        )
        shared = {"dual_resumes": 3}
        stats.outcomes = [
            PlanningOutcome(query=query, admitted=True, extras={"solver_counters": shared}),
            PlanningOutcome(query=query, admitted=True, extras={"solver_counters": shared}),
            PlanningOutcome(
                query=query, admitted=False, extras={"solver_counters": {"dual_resumes": 2}}
            ),
        ]
        assert stats.solver_counters() == {"dual_resumes": 5}
