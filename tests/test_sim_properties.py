"""Property-based tests of the churn simulation invariants.

For *any* randomly generated (valid) event sequence — arrivals,
departures, host failures/recoveries, drift, replan ticks — the harness
must keep the system consistent:

* the live allocation validates cleanly after the run (the harness already
  checks after every event; these tests re-assert the end state),
* the planner's statistics agree with a replay-from-scratch of the
  surviving queries: exact state equality for the optimistic bound (whose
  retirement *is* a replay), and structural equality for allocation
  planners (the allocation is exactly what the surviving queries need —
  garbage collection left nothing behind).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import PlannerConfig, create_planner
from repro.dsps.plan import extract_plan, rebuild_minimal_allocation
from repro.dsps.query import DecompositionMode, QueryWorkloadItem
from repro.sim import (
    EventSchedule,
    HostFailure,
    HostRecovery,
    LoadDrift,
    QueryArrival,
    QueryDeparture,
    ReplanTick,
    SimulationHarness,
)
from repro.workloads.scenarios import (
    SimulationScenarioConfig,
    build_simulation_scenario,
)

BASE_NAMES = [f"b{i}" for i in range(8)]
NUM_HOSTS = 3


def tiny_scenario():
    return build_simulation_scenario(
        SimulationScenarioConfig(
            num_hosts=NUM_HOSTS,
            num_base_streams=len(BASE_NAMES),
            host_cpu_capacity=5.0,
            host_bandwidth=150.0,
            decomposition=DecompositionMode.CANONICAL,
            seed=3,
        )
    )


@st.composite
def event_schedules(draw, max_events: int = 18):
    """Generate a valid random event schedule.

    Validity constraints mirror the real system: departures reference an
    existing arrival (at most once), failures target an active host while
    at least two are up, recoveries target an offline host.
    """
    num_events = draw(st.integers(min_value=1, max_value=max_events))
    events = []
    arrival_index = 0
    departed = set()
    offline = set()
    for position in range(num_events):
        time = float(position)
        choices = ["arrive", "drift", "replan"]
        if arrival_index - len(departed) > 0:
            choices.append("depart")
        if NUM_HOSTS - len(offline) >= 2:
            choices.append("fail")
        if offline:
            choices.append("recover")
        action = draw(st.sampled_from(choices))
        if action == "arrive":
            names = draw(
                st.sets(st.sampled_from(BASE_NAMES), min_size=2, max_size=3)
            )
            events.append(
                QueryArrival(
                    time=time,
                    item=QueryWorkloadItem(base_names=tuple(sorted(names))),
                    arrival_index=arrival_index,
                )
            )
            arrival_index += 1
        elif action == "depart":
            candidates = [
                i for i in range(arrival_index) if i not in departed
            ]
            index = draw(st.sampled_from(candidates))
            departed.add(index)
            events.append(QueryDeparture(time=time, arrival_index=index))
        elif action == "fail":
            host = draw(
                st.sampled_from([h for h in range(NUM_HOSTS) if h not in offline])
            )
            offline.add(host)
            events.append(HostFailure(time=time, host=host))
        elif action == "recover":
            host = draw(st.sampled_from(sorted(offline)))
            offline.discard(host)
            events.append(HostRecovery(time=time, host=host))
        elif action == "drift":
            factor = draw(
                st.floats(min_value=0.5, max_value=3.0, allow_nan=False)
            )
            events.append(LoadDrift(time=time, factor=factor, num_operators=2))
        else:
            events.append(ReplanTick(time=time))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return EventSchedule(events=events, seed=seed, duration=float(num_events))


common_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestChurnInvariants:
    @given(schedule=event_schedules())
    @common_settings
    def test_heuristic_allocation_valid_and_minimal_after_any_sequence(
        self, schedule
    ):
        scenario = tiny_scenario()
        planner = create_planner("heuristic", scenario.build_catalog())
        # validate_invariants=True re-checks after *every* event; reaching
        # the end means no intermediate state was ever infeasible.
        result = SimulationHarness(planner).run(schedule)
        allocation = planner.allocation
        assert allocation.validate() == []
        assert result.final_violations == []

        # Replay-from-scratch structure: garbage collection must have left
        # exactly what the surviving queries need — rebuilding the minimal
        # allocation from the survivors changes nothing.
        rebuilt = rebuild_minimal_allocation(planner.catalog, allocation)
        assert rebuilt.admitted_queries == allocation.admitted_queries
        assert rebuilt.placements == allocation.placements
        assert rebuilt.flows == allocation.flows
        assert rebuilt.available == allocation.available
        assert rebuilt.provided == allocation.provided

        # Stats agree with the active view, and every survivor has a
        # structurally valid plan (C1-C4).
        assert planner.num_admitted == len(planner.active_queries)
        for query_id in planner.active_queries:
            query = planner.catalog.get_query(query_id)
            plan = extract_plan(planner.catalog, allocation, query.result_stream)
            assert plan.is_valid(planner.catalog)

    @given(schedule=event_schedules())
    @common_settings
    def test_optimistic_state_equals_replay_of_survivors(self, schedule):
        scenario = tiny_scenario()
        catalog = scenario.build_catalog()
        planner = create_planner("optimistic", catalog)
        SimulationHarness(planner).run(schedule)

        # Replay exactly the surviving queries, in their admission order,
        # on a fresh planner over the same catalog and topology: the
        # aggregate accounting must come out identical.
        replayed = create_planner("optimistic", catalog)
        for query_id in planner._admitted_order:
            outcome = replayed.submit(catalog.get_query(query_id))
            assert outcome.admitted
        assert replayed.active_queries == planner.active_queries
        assert replayed.cpu_used == pytest.approx(planner.cpu_used)
        assert replayed.cpu_capacity == pytest.approx(planner.cpu_capacity)

    @given(schedule=event_schedules(max_events=10))
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @pytest.mark.slow
    def test_sqpr_allocation_valid_after_any_sequence(self, schedule):
        scenario = tiny_scenario()
        planner = create_planner(
            "sqpr", scenario.build_catalog(), config=PlannerConfig(time_limit=None)
        )
        result = SimulationHarness(planner).run(schedule)
        allocation = planner.allocation
        assert allocation.validate() == []
        assert result.final_violations == []
        assert planner.num_admitted == len(planner.active_queries)
        for query_id in planner.active_queries:
            query = planner.catalog.get_query(query_id)
            plan = extract_plan(planner.catalog, allocation, query.result_stream)
            assert plan.is_valid(planner.catalog)

    @given(schedule=event_schedules(max_events=12))
    @common_settings
    def test_soda_allocation_valid_after_any_sequence(self, schedule):
        scenario = tiny_scenario()
        planner = create_planner("soda", scenario.build_catalog())
        result = SimulationHarness(planner).run(schedule)
        assert planner.allocation.validate() == []
        assert result.final_violations == []
        assert planner.num_admitted == len(planner.active_queries)
