"""Schedule replay through the admission service stays deterministic.

The harness can route arrival events through an
:class:`~repro.service.AdmissionService` instead of calling
``planner.submit`` directly.  Under the single-worker configuration
(``pipelined=False``) a batch holds exactly one query, so the replay
must reproduce the direct path bit for bit — same counters, same result
fingerprint, same golden fixture — while the service's own metrics see
every arrival.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import PlannerConfig, create_planner
from repro.dsps.query import DecompositionMode
from repro.exceptions import SimulationError
from repro.service import AdmissionService, ServiceConfig
from repro.sim import SimulationHarness
from repro.workloads.churn import ChurnTraceConfig, build_churn_schedule
from repro.workloads.scenarios import (
    SimulationScenarioConfig,
    build_simulation_scenario,
)

GOLDEN_CHURN_FIXTURE = (
    Path(__file__).parent / "fixtures" / "golden_churn.json"
)

SCENARIO = SimulationScenarioConfig(
    num_hosts=3,
    num_base_streams=8,
    host_cpu_capacity=5.0,
    host_bandwidth=150.0,
    decomposition=DecompositionMode.CANONICAL,
    seed=3,
)

TRACE = ChurnTraceConfig(
    duration=90.0,
    arrival_rate=0.5,
    arities=(2,),
    min_lifetime=8.0,
    num_host_failures=1,
    recovery_delay=20.0,
    drift_period=15.0,
    drift_factor=2.0,
    replan_period=25.0,
    seed=424,
)


def run_replay(planner_name: str, through_service: bool):
    scenario = build_simulation_scenario(SCENARIO)
    schedule = build_churn_schedule(scenario, TRACE)
    planner = create_planner(
        planner_name,
        scenario.build_catalog(),
        config=PlannerConfig(time_limit=None),
    )
    service = None
    if through_service:
        service = AdmissionService(
            planner, config=ServiceConfig(pipelined=False)
        )
    harness = SimulationHarness(planner, service=service)
    result = harness.run(schedule)
    return result, service


class TestServiceReplayDeterminism:
    @pytest.mark.parametrize("planner_name", ["sqpr", "heuristic"])
    def test_replay_matches_direct_submission(self, planner_name):
        direct, _ = run_replay(planner_name, through_service=False)
        routed, service = run_replay(planner_name, through_service=True)
        assert routed.counters == direct.counters
        assert routed.fingerprint() == direct.fingerprint()
        # Every arrival actually travelled through the service.
        counters = service.metrics.snapshot()["counters"]
        assert counters["arrivals_total"] >= direct.counters["arrivals"]
        assert counters["batches_total"] == counters["arrivals_total"]

    def test_replay_is_repeatable(self):
        first, _ = run_replay("sqpr", through_service=True)
        second, _ = run_replay("sqpr", through_service=True)
        assert first.fingerprint() == second.fingerprint()

    @pytest.mark.slow
    def test_golden_churn_fixture_reproduced_through_service(self):
        """The committed golden fixture holds when arrivals go through
        the service — the single-worker service path is invisible to the
        simulation's observable results."""
        golden_scenario = SimulationScenarioConfig(
            num_hosts=3,
            num_base_streams=8,
            host_cpu_capacity=5.0,
            host_bandwidth=150.0,
            decomposition=DecompositionMode.CANONICAL,
            seed=3,
        )
        golden_trace = ChurnTraceConfig(
            duration=185.0,
            arrival_rate=0.55,
            arities=(2,),
            min_lifetime=8.0,
            num_host_failures=2,
            recovery_delay=25.0,
            drift_period=12.0,
            drift_factor=2.2,
            replan_period=18.0,
            seed=2011,
        )
        expected = json.loads(
            GOLDEN_CHURN_FIXTURE.read_text(encoding="utf-8")
        )["sqpr"]
        scenario = build_simulation_scenario(golden_scenario)
        schedule = build_churn_schedule(scenario, golden_trace)
        planner = create_planner(
            "sqpr",
            scenario.build_catalog(),
            config=PlannerConfig(time_limit=None),
        )
        service = AdmissionService(
            planner, config=ServiceConfig(pipelined=False)
        )
        result = SimulationHarness(planner, service=service).run(schedule)
        assert {
            "counters": dict(sorted(result.counters.items())),
            "final_active": result.final_active,
        } == expected


class TestServiceReplayValidation:
    def test_rejects_pipelined_service(self):
        scenario = build_simulation_scenario(SCENARIO)
        planner = create_planner("sqpr", scenario.build_catalog())
        service = AdmissionService(
            planner, config=ServiceConfig(pipelined=True)
        )
        with pytest.raises(SimulationError):
            SimulationHarness(planner, service=service)
        service.close()

    def test_rejects_foreign_planner(self):
        scenario = build_simulation_scenario(SCENARIO)
        planner = create_planner("sqpr", scenario.build_catalog())
        other = create_planner("sqpr", scenario.build_catalog())
        service = AdmissionService(
            other, config=ServiceConfig(pipelined=False)
        )
        with pytest.raises(SimulationError):
            SimulationHarness(planner, service=service)

    def test_rejects_service_owned_engine(self):
        from repro.dsps.engine import ClusterEngine

        scenario = build_simulation_scenario(SCENARIO)
        planner = create_planner("sqpr", scenario.build_catalog())
        service = AdmissionService(
            planner,
            engine=ClusterEngine(planner.catalog),
            config=ServiceConfig(pipelined=False),
        )
        with pytest.raises(SimulationError):
            SimulationHarness(planner, service=service)
