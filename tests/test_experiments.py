"""Tests for the experiment runner, metrics and reporting."""

from __future__ import annotations

import pytest

from repro.baselines.heuristic import HeuristicPlanner
from repro.core.optimistic import OptimisticBoundPlanner
from repro.core.planner import PlannerConfig, SQPRPlanner
from repro.exceptions import PlanningError
from repro.experiments.metrics import (
    cdf,
    mean,
    optimality_gap,
    percentile,
    saturation_point,
    series_is_non_decreasing,
)
from repro.experiments.reporting import format_series, format_table
from repro.experiments.runner import run_admission_experiment
from repro.workloads.scenarios import SimulationScenarioConfig, build_simulation_scenario
from repro.dsps.query import DecompositionMode
from tests.conftest import make_catalog, query_over


def small_workload(num=6):
    scenario = build_simulation_scenario(
        SimulationScenarioConfig(
            num_hosts=3,
            num_base_streams=8,
            host_cpu_capacity=6.0,
            decomposition=DecompositionMode.CANONICAL,
            seed=2,
        )
    )
    return scenario, scenario.workload(num, arities=(2, 3))


class TestRunner:
    def test_curve_shape(self):
        scenario, workload = small_workload()
        planner = SQPRPlanner(
            scenario.build_catalog(), config=PlannerConfig(time_limit=2.0)
        )
        curve = run_admission_experiment(planner, workload, checkpoint_every=2)
        assert curve.total_submitted == len(workload)
        assert curve.total_satisfied <= curve.total_submitted
        assert curve.submitted[-1] == len(workload)
        assert series_is_non_decreasing(curve.satisfied)
        assert len(curve.planning_times) == len(workload)
        assert 0.0 <= curve.admission_fraction <= 1.0

    def test_group_submission(self):
        scenario, workload = small_workload(6)
        planner = SQPRPlanner(
            scenario.build_catalog(), config=PlannerConfig(time_limit=1.0)
        )
        curve = run_admission_experiment(
            planner, workload, checkpoint_every=2, group_size=3
        )
        assert curve.total_submitted == 6

    def test_works_with_all_planner_types(self):
        scenario, workload = small_workload(5)
        for planner in (
            HeuristicPlanner(scenario.build_catalog()),
            OptimisticBoundPlanner(scenario.build_catalog()),
        ):
            curve = run_admission_experiment(planner, workload, checkpoint_every=2)
            assert curve.total_submitted == 5
            assert curve.total_satisfied >= 1

    def test_invalid_arguments(self):
        scenario, workload = small_workload(2)
        planner = HeuristicPlanner(scenario.build_catalog())
        with pytest.raises(PlanningError):
            run_admission_experiment(planner, workload, group_size=0)
        with pytest.raises(PlanningError):
            run_admission_experiment(object(), workload)

    def test_planning_time_at_utilisation(self):
        scenario, workload = small_workload(6)
        planner = HeuristicPlanner(scenario.build_catalog())
        curve = run_admission_experiment(planner, workload, checkpoint_every=1)
        assert curve.planning_time_at_utilisation() >= 0.0
        assert curve.average_planning_time() >= 0.0


class TestMetrics:
    def test_cdf(self):
        values, fractions = cdf([3.0, 1.0, 2.0])
        assert values == [1.0, 2.0, 3.0]
        assert fractions == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_cdf_empty(self):
        assert cdf([]) == ([], [])

    def test_saturation_point(self):
        assert saturation_point([10, 20, 30, 40], [10, 18, 20, 20]) == 30
        assert saturation_point([10, 20], [10, 20]) == 20
        assert saturation_point([], []) == 0

    def test_optimality_gap(self):
        assert optimality_gap(75, 100) == pytest.approx(0.25)
        assert optimality_gap(120, 100) == 0.0
        assert optimality_gap(10, 0) == 0.0

    def test_series_monotonicity(self):
        assert series_is_non_decreasing([1, 2, 2, 3])
        assert not series_is_non_decreasing([1, 2, 1])
        assert series_is_non_decreasing([1.0, 0.95], tolerance=0.1)

    def test_mean_and_percentile(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert mean([]) == 0.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)
        assert percentile([], 50) == 0.0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["sqpr", 1.23456], ["heuristic", 2]], title="demo"
        )
        assert "demo" in text
        assert "sqpr" in text
        assert "1.235" in text
        assert "heuristic" in text

    def test_format_series_handles_unequal_lengths(self):
        text = format_series({"a": [1, 2, 3], "b": [4]}, title="series")
        assert "series" in text
        assert text.count("\n") >= 4

    def test_format_series_empty(self):
        assert format_series({}, title="empty") == "empty"
