"""Tests for the LP/MILP solver backends.

The pure-Python simplex and branch-and-bound implementations are
cross-checked against ``scipy`` (HiGHS) on randomly generated instances via
hypothesis, and both are exercised on hand-written instances with known
optima.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.milp.branch_and_bound import BnbOptions, solve_branch_and_bound
from repro.milp.expression import VarType, lin_sum
from repro.milp.lp_backend import scipy_available, solve_lp
from repro.milp.model import Model, ObjectiveSense
from repro.milp.result import SolveStatus
from repro.milp.scipy_backend import highs_available, solve_with_highs
from repro.milp.simplex import solve_lp_simplex
from repro.milp.solver import MilpSolver, SolverBackend


def small_lp():
    """max 3x + 2y s.t. x + y <= 4, x <= 2, x,y >= 0  -> optimum 10 at (2,2)."""
    c = np.array([-3.0, -2.0])  # minimise form
    a_ub = np.array([[1.0, 1.0], [1.0, 0.0]])
    b_ub = np.array([4.0, 2.0])
    a_eq = np.zeros((0, 2))
    b_eq = np.zeros(0)
    lower = np.zeros(2)
    upper = np.array([np.inf, np.inf])
    return c, a_ub, b_ub, a_eq, b_eq, lower, upper


class TestSimplex:
    def test_known_optimum(self):
        solution = solve_lp_simplex(*small_lp())
        assert solution.is_optimal
        assert solution.objective == pytest.approx(-10.0)
        assert np.allclose(solution.x, [2.0, 2.0])

    def test_infeasible_detected(self):
        c = np.array([1.0])
        a_ub = np.array([[1.0], [-1.0]])
        b_ub = np.array([1.0, -3.0])  # x <= 1 and x >= 3
        solution = solve_lp_simplex(
            c, a_ub, b_ub, np.zeros((0, 1)), np.zeros(0), np.zeros(1), np.array([np.inf])
        )
        assert solution.status == "infeasible"

    def test_unbounded_detected(self):
        c = np.array([-1.0])
        solution = solve_lp_simplex(
            c,
            np.zeros((0, 1)),
            np.zeros(0),
            np.zeros((0, 1)),
            np.zeros(0),
            np.zeros(1),
            np.array([np.inf]),
        )
        assert solution.status in ("unbounded", "optimal")
        # With no constraints the bounded direction is reported as optimal at
        # the bound; a cost pushing to +inf must not be reported optimal.
        if solution.status == "optimal":
            assert not np.isfinite(solution.objective) or solution.objective <= -0.0

    def test_equality_constraints(self):
        c = np.array([1.0, 1.0])
        a_eq = np.array([[1.0, 1.0]])
        b_eq = np.array([3.0])
        solution = solve_lp_simplex(
            c, np.zeros((0, 2)), np.zeros(0), a_eq, b_eq, np.zeros(2), np.array([np.inf, np.inf])
        )
        assert solution.is_optimal
        assert solution.objective == pytest.approx(3.0)

    def test_upper_bounds_respected(self):
        c = np.array([-1.0, -1.0])
        solution = solve_lp_simplex(
            c,
            np.zeros((0, 2)),
            np.zeros(0),
            np.zeros((0, 2)),
            np.zeros(0),
            np.zeros(2),
            np.array([1.5, 2.5]),
        )
        assert solution.is_optimal
        assert solution.objective == pytest.approx(-4.0)

    @pytest.mark.skipif(not scipy_available(), reason="scipy not installed")
    @given(
        n=st.integers(min_value=1, max_value=4),
        m=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_simplex_matches_scipy_on_random_lps(self, n, m, seed):
        rng = np.random.default_rng(seed)
        c = rng.uniform(-5, 5, n)
        a_ub = rng.uniform(-2, 3, (m, n))
        b_ub = rng.uniform(1, 10, m)
        lower = np.zeros(n)
        upper = rng.uniform(1, 8, n)
        ours = solve_lp_simplex(c, a_ub, b_ub, np.zeros((0, n)), np.zeros(0), lower, upper)
        theirs = solve_lp(
            c, a_ub, b_ub, np.zeros((0, n)), np.zeros(0), lower, upper, engine="scipy"
        )
        # Bounded feasible region (0 <= x <= upper), so both must be optimal.
        assert ours.is_optimal and theirs.is_optimal
        assert ours.objective == pytest.approx(theirs.objective, rel=1e-6, abs=1e-6)


def knapsack_model() -> Model:
    """A small 0/1 knapsack with known optimum 11 (items 0 and 2)."""
    model = Model("knapsack", sense=ObjectiveSense.MAXIMIZE)
    values = [6.0, 4.0, 5.0]
    weights = [3.0, 3.0, 2.0]
    items = [model.add_binary(f"item{i}") for i in range(3)]
    model.add_constr(lin_sum(w * x for w, x in zip(weights, items)) <= 5.0)
    model.set_objective(lin_sum(v * x for v, x in zip(values, items)))
    return model


class TestBranchAndBound:
    def test_knapsack_optimum(self):
        result = solve_branch_and_bound(knapsack_model())
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(11.0)

    def test_infeasible_model(self):
        model = Model("infeasible")
        x = model.add_binary("x")
        model.add_constr(x >= 2)
        result = solve_branch_and_bound(model)
        assert result.status is SolveStatus.INFEASIBLE

    def test_respects_node_limit(self):
        result = solve_branch_and_bound(knapsack_model(), BnbOptions(node_limit=1))
        assert result.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE, SolveStatus.TIMEOUT)

    def test_mixed_integer_continuous(self):
        model = Model("mixed", sense=ObjectiveSense.MAXIMIZE)
        x = model.add_binary("x")
        y = model.add_continuous("y", 0.0, 10.0)
        model.add_constr(y <= 3 + 2 * x)
        model.set_objective(y + x)
        result = solve_branch_and_bound(model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(6.0)

    @pytest.mark.skipif(not highs_available(), reason="scipy.optimize.milp not available")
    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=20, deadline=None)
    def test_bnb_matches_highs_on_random_knapsacks(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        values = rng.uniform(1, 10, n)
        weights = rng.uniform(1, 5, n)
        capacity = float(weights.sum() * rng.uniform(0.3, 0.8))
        model = Model("rand", sense=ObjectiveSense.MAXIMIZE)
        items = [model.add_binary(f"i{k}") for k in range(n)]
        model.add_constr(lin_sum(w * x for w, x in zip(weights, items)) <= capacity)
        model.set_objective(lin_sum(v * x for v, x in zip(values, items)))
        ours = solve_branch_and_bound(model)
        theirs = solve_with_highs(model)
        assert ours.status is SolveStatus.OPTIMAL
        assert theirs.objective == pytest.approx(ours.objective, rel=1e-6, abs=1e-6)


class TestSolverFacade:
    def test_auto_backend_resolution(self):
        solver = MilpSolver()
        assert solver.resolved_backend() in (SolverBackend.HIGHS, SolverBackend.BRANCH_AND_BOUND)

    def test_explicit_bnb_backend(self):
        solver = MilpSolver(backend=SolverBackend.BRANCH_AND_BOUND)
        result = solver.solve(knapsack_model())
        assert result.objective == pytest.approx(11.0)

    @pytest.mark.skipif(not highs_available(), reason="scipy.optimize.milp not available")
    def test_explicit_highs_backend(self):
        solver = MilpSolver(backend=SolverBackend.HIGHS)
        result = solver.solve(knapsack_model())
        assert result.objective == pytest.approx(11.0)
        assert result.backend == "highs"

    def test_time_limit_override(self):
        solver = MilpSolver(backend=SolverBackend.BRANCH_AND_BOUND, time_limit=100.0)
        result = solver.solve(knapsack_model(), time_limit=10.0)
        assert result.has_solution

    def test_is_usable_status(self):
        solver = MilpSolver(backend=SolverBackend.BRANCH_AND_BOUND)
        good = solver.solve(knapsack_model())
        assert solver.is_usable_status(good)
        model = Model("bad")
        x = model.add_binary("x")
        model.add_constr(x >= 2)
        bad = solver.solve(model)
        assert not solver.is_usable_status(bad)

    def test_result_gap_and_lookup(self):
        solver = MilpSolver(backend=SolverBackend.BRANCH_AND_BOUND)
        result = solver.solve(knapsack_model())
        assert result.value_by_name("item0") in (0.0, 1.0)
        gap = result.gap()
        assert gap is None or gap >= 0.0
