"""Unit coverage for the admission service and its metrics layer.

The sustained-load story lives in ``benchmarks/test_fig11_admission_service``;
here the contracts are pinned on tiny systems: queueing and overload
policies, batch coalescing with the sequential-equivalence fallback,
pipelined vs. synchronous execution, deploys routed through the cluster
engine, and the metrics instruments themselves.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.api import PlannerConfig, create_planner
from repro.dsps.engine import ClusterEngine
from repro.exceptions import PlanningError
from repro.service import (
    AdmissionService,
    AdmissionTimeout,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    QueueFullError,
    ServiceClosed,
    ServiceConfig,
)

from tests.conftest import make_catalog, query_over


def small_workload(count: int = 6):
    names = [f"b{i}" for i in range(4)]
    return [
        query_over(names[i % 4], names[(i + 1) % 4]) for i in range(count)
    ]


def make_service(pipelined=False, engine=True, **config_kwargs):
    catalog = make_catalog(num_hosts=3, num_base=4)
    planner = create_planner(
        "sqpr", catalog, config=PlannerConfig(time_limit=2.0)
    )
    cluster = ClusterEngine(catalog) if engine else None
    service = AdmissionService(
        planner,
        engine=cluster,
        config=ServiceConfig(pipelined=pipelined, **config_kwargs),
    )
    return service, planner, cluster


class TestMetrics:
    def test_counter_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 2

    def test_histogram_quantiles_bracket_observations(self):
        histogram = LatencyHistogram("h")
        for value in (0.001, 0.002, 0.004, 0.1, 1.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert 0.0005 <= histogram.quantile(0.5) <= 0.01
        assert histogram.quantile(1.0) == pytest.approx(1.0)
        snap = histogram.snapshot()
        assert snap["count"] == 5
        assert snap["min"] == pytest.approx(0.001)
        assert snap["max"] == pytest.approx(1.0)
        assert snap["p50"] <= snap["p99"] <= snap["max"]

    def test_histogram_edge_cases(self):
        histogram = LatencyHistogram("h")
        assert histogram.quantile(0.99) == 0.0
        histogram.observe(-1.0)  # clamped to zero
        assert histogram.snapshot()["min"] == 0.0
        histogram.observe(1e9)  # overflow bucket reports the true max
        assert histogram.quantile(1.0) == pytest.approx(1e9)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)
        with pytest.raises(ValueError):
            LatencyHistogram("bad", lowest=0.0)

    def test_registry_snapshot_round_trips_json(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(2.0)
        registry.histogram("c").observe(0.5)
        assert registry.counter("a") is registry.counter("a")
        parsed = json.loads(registry.to_json())
        assert parsed["counters"]["a"] == 1
        assert parsed["gauges"]["b"] == 2.0
        assert parsed["histograms"]["c"]["count"] == 1


class TestServiceConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queue": 0},
            {"max_batch": 0},
            {"batch_window": -0.1},
            {"overload_policy": "drop"},
            {"fallback": "sometimes"},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)

    def test_engine_must_share_catalog(self):
        catalog = make_catalog()
        other = make_catalog()
        planner = create_planner("sqpr", catalog)
        with pytest.raises(PlanningError):
            AdmissionService(planner, engine=ClusterEngine(other))


class TestSynchronousService:
    def test_submit_decides_and_deploys_inline(self):
        service, planner, cluster = make_service()
        tickets = [service.submit(item) for item in small_workload(4)]
        assert all(ticket.done() for ticket in tickets)
        outcomes = [ticket.result() for ticket in tickets]
        assert all(outcome.admitted for outcome in outcomes)
        assert (
            cluster.allocation.fingerprint()
            == planner.allocation.fingerprint()
        )
        snapshot = service.metrics.snapshot()
        assert snapshot["counters"]["admitted_total"] == 4
        assert snapshot["counters"]["batches_total"] == 4
        assert snapshot["counters"]["deploys_total"] == 4
        service.close()

    def test_submit_many_coalesces_deterministically(self):
        def run():
            service, planner, _ = make_service(max_batch=4)
            tickets = service.submit_many(small_workload(8))
            decisions = [ticket.result().admitted for ticket in tickets]
            batches = service.metrics.snapshot()["counters"]["batches_total"]
            service.close()
            return decisions, planner.allocation.fingerprint(), batches

        first = run()
        second = run()
        assert first == second
        assert first[2] == 2  # 8 queries over max_batch=4

    def test_ticket_latency_fields(self):
        service, _, _ = make_service()
        ticket = service.submit(small_workload(1)[0])
        assert ticket.latency is not None and ticket.latency >= 0
        assert ticket.queue_wait is not None and ticket.queue_wait >= 0
        service.close()

    def test_closed_service_refuses_submissions(self):
        service, _, _ = make_service()
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit(small_workload(1)[0])


class TestOverloadPolicies:
    def test_reject_policy_sheds_on_full_queue(self):
        # No drain happens while the sync lock is held by another thread,
        # so fill the queue directly to exercise the shed path.
        service, _, _ = make_service(
            max_queue=2, overload_policy="reject"
        )
        with service._sync_lock:  # freeze the pipeline
            service._enqueue(small_workload(1)[0])
            service._enqueue(small_workload(1)[0])
            with pytest.raises(QueueFullError):
                service._enqueue(small_workload(1)[0])
        assert service.metrics.snapshot()["counters"]["shed_total"] == 1
        service.close()

    def test_timeout_policy_bounds_the_wait(self):
        service, _, _ = make_service(
            max_queue=1, overload_policy="timeout", enqueue_timeout=0.05
        )
        with service._sync_lock:
            service._enqueue(small_workload(1)[0])
            started = time.perf_counter()
            with pytest.raises(AdmissionTimeout):
                service._enqueue(small_workload(1)[0])
            assert time.perf_counter() - started >= 0.05
        service.close()


class TestPipelinedService:
    def test_pipeline_matches_sync_decisions(self):
        sync_service, sync_planner, _ = make_service()
        sync_outcomes = [
            sync_service.submit(item).result()
            for item in small_workload(6)
        ]
        sync_service.close()

        pipe_service, pipe_planner, pipe_engine = make_service(
            pipelined=True, max_batch=1, batch_window=0.0
        )
        tickets = [pipe_service.submit(item) for item in small_workload(6)]
        pipe_service.flush(timeout=30.0)
        pipe_outcomes = [ticket.result(timeout=5.0) for ticket in tickets]
        pipe_service.close()

        assert [o.admitted for o in pipe_outcomes] == [
            o.admitted for o in sync_outcomes
        ]
        assert (
            pipe_planner.allocation.fingerprint()
            == sync_planner.allocation.fingerprint()
        )
        assert (
            pipe_engine.allocation.fingerprint()
            == pipe_planner.allocation.fingerprint()
        )

    def test_pipeline_coalesces_under_backlog(self):
        service, _, _ = make_service(
            pipelined=True, max_batch=8, batch_window=0.05
        )
        tickets = [service.submit(item) for item in small_workload(8)]
        service.flush(timeout=30.0)
        assert all(t.result(timeout=5.0) is not None for t in tickets)
        counters = service.metrics.snapshot()["counters"]
        assert counters["batches_total"] < 8  # real coalescing happened
        service.close()

    def test_close_drains_accepted_work(self):
        service, _, _ = make_service(pipelined=True)
        tickets = [service.submit(item) for item in small_workload(3)]
        service.close(wait=True)
        assert all(ticket.done() for ticket in tickets)

    def test_flush_timeout_raises(self):
        service, _, _ = make_service(pipelined=True)
        # Stall the solver by holding the deploy queue full.
        service._deploys.put(("stall", ([], None, (set(), set(), set()))))
        service.submit(small_workload(1)[0])
        with pytest.raises(AdmissionTimeout):
            service.flush(timeout=0.05)
        # Unstick and shut down cleanly.
        try:
            service._deploys.get_nowait()
        except Exception:
            pass
        service.close(wait=False)


class TestFallbackPolicies:
    def _run(self, fallback):
        # One host, tiny capacity: the first query fills the system and the
        # rest of the batch is rejected jointly.
        catalog = make_catalog(num_hosts=1, cpu=1.2, num_base=4, rate=10.0)
        planner = create_planner(
            "sqpr", catalog, config=PlannerConfig(time_limit=2.0)
        )
        service = AdmissionService(
            planner,
            config=ServiceConfig(
                pipelined=False, max_batch=8, fallback=fallback
            ),
        )
        tickets = service.submit_many(small_workload(8))
        outcomes = [ticket.result() for ticket in tickets]
        counters = service.metrics.snapshot()["counters"]
        service.close()
        return outcomes, counters

    def test_fallback_none_accepts_batch_outcomes(self):
        outcomes, counters = self._run("none")
        assert counters["fallback_batches_total"] == 0
        assert counters["rejected_total"] == sum(
            1 for o in outcomes if not o.admitted
        )

    def test_fallback_rejected_replans_each_member(self):
        outcomes_none, _ = self._run("none")
        outcomes, counters = self._run("rejected")
        if any(not o.admitted for o in outcomes_none):
            assert counters["fallback_batches_total"] >= 1
        # Per-query replanning never loses an admission.
        assert sum(o.admitted for o in outcomes) >= sum(
            o.admitted for o in outcomes_none
        )

    def test_fallback_batch_triggers_on_fully_rejected_batch(self):
        # Saturate the system first, then submit a batch that is jointly
        # rejected: the "batch" policy re-plans it member by member.
        catalog = make_catalog(num_hosts=1, cpu=1.2, num_base=4, rate=10.0)
        planner = create_planner(
            "sqpr", catalog, config=PlannerConfig(time_limit=2.0)
        )
        service = AdmissionService(
            planner,
            config=ServiceConfig(
                pipelined=False, max_batch=4, fallback="batch"
            ),
        )
        service.submit_many(small_workload(8))
        before = service.metrics.snapshot()["counters"][
            "fallback_batches_total"
        ]
        tickets = service.submit_many(small_workload(4))
        [ticket.result() for ticket in tickets]
        after = service.metrics.snapshot()["counters"][
            "fallback_batches_total"
        ]
        if all(not t.result().admitted for t in tickets):
            assert after >= before
        service.close()


class TestServiceLoadExperiment:
    def test_experiment_compares_both_paths_on_one_trace(self):
        from repro.experiments.service_load import (
            poisson_offsets,
            run_service_load_experiment,
        )

        with pytest.raises(ValueError):
            poisson_offsets(0.0, 4, seed=1)
        offsets = poisson_offsets(50.0, 6, seed=1)
        assert len(offsets) == 6 and offsets == sorted(offsets)

        records = run_service_load_experiment(
            [{"rate": 50.0, "queries_per_site": 2, "seed": 5}],
            num_sites=2,
            time_limit=0.5,
            workers=2,
            max_batch=4,
            batch_window=0.05,
            batch_time_limit=1.0,
        )
        assert len(records) == 1
        record = records[0]
        assert record["num_queries"] == 4
        assert record["arrival_seed"] == 5
        for path in ("sequential", "service"):
            summary = record[path]
            assert summary["submitted"] == 4
            assert 0 <= summary["admitted"] <= 4
            assert summary["latency_p50"] <= summary["latency_p99"]
        assert record["throughput_speedup"] > 0
        assert "metrics" in record["service"]
        counters = record["service"]["metrics"]["counters"]
        assert counters["arrivals_total"] == 4


class TestConcurrentSubmitters:
    def test_many_threads_one_service(self):
        service, planner, cluster = make_service(
            pipelined=True, max_batch=4, batch_window=0.01
        )
        results = []
        lock = threading.Lock()

        def client(index: int) -> None:
            ticket = service.submit(small_workload(8)[index % 8])
            outcome = ticket.result(timeout=30.0)
            with lock:
                results.append(outcome)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(12)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        service.close()
        assert len(results) == 12
        counters = service.metrics.snapshot()["counters"]
        assert counters["arrivals_total"] == 12
        assert (
            counters["admitted_total"] + counters["rejected_total"] >= 12
        )
        assert (
            cluster.allocation.fingerprint()
            == planner.allocation.fingerprint()
        )
