"""Tests for the pluggable execution backends in ``repro.utils.pool``.

Covers :func:`map_in_pool`'s three backends (identical results, ordering,
error propagation) and the :class:`PersistentProcessPool` protocol
(handshake, call/scatter/broadcast, worker-survives-task-failure, stats,
lifecycle).
"""

from __future__ import annotations

import os

import pytest

from repro.utils.pool import (
    BACKENDS,
    PersistentProcessPool,
    WorkerError,
    map_in_pool,
    process_backend_available,
)

needs_fork = pytest.mark.skipif(
    not process_backend_available(),
    reason="process backend needs the 'fork' start method",
)


def _square(x):
    return x * x


def _boom(x):
    if x == 3:
        raise ValueError("boom")
    return x


class TestMapInPool:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", [None, 1, 2, 8])
    def test_backends_agree_and_preserve_order(self, backend, workers):
        if backend == "process" and not process_backend_available():
            pytest.skip("no fork")
        items = list(range(7))
        assert map_in_pool(
            _square, items, workers=workers, backend=backend
        ) == [x * x for x in items]

    def test_empty_items(self):
        assert map_in_pool(_square, [], workers=4) == []

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            map_in_pool(_square, [1], backend="carrier-pigeon")

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            map_in_pool(_square, [1], workers=-1)

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_exception_propagates(self, backend):
        with pytest.raises(ValueError, match="boom"):
            map_in_pool(_boom, [1, 2, 3, 4], workers=2, backend=backend)

    @needs_fork
    def test_process_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            map_in_pool(_boom, [1, 2, 3, 4], workers=2, backend="process")

    def test_serial_ignores_workers(self):
        # serial must never spin a pool — observable via thread identity.
        import threading

        main = threading.get_ident()
        idents = map_in_pool(
            lambda _: threading.get_ident(),
            [1, 2, 3],
            workers=3,
            backend="serial",
        )
        assert set(idents) == {main}


# ---------------------------------------------------------------- persistent
def _make_handler(payload):
    state = {"base": payload, "calls": 0}

    def handler(tag, body):
        state["calls"] += 1
        if tag == "add":
            return state["base"] + body
        if tag == "calls":
            return state["calls"]
        if tag == "pid":
            return os.getpid()
        if tag == "fail":
            raise RuntimeError("task failed on purpose")
        raise ValueError(f"unknown tag {tag}")

    return handler


def _bad_init(payload):
    raise RuntimeError("init exploded")


@needs_fork
class TestPersistentProcessPool:
    def test_call_uses_warm_state(self):
        with PersistentProcessPool(_make_handler, [10, 20]) as pool:
            assert pool.call(0, "add", 1) == 11
            assert pool.call(1, "add", 1) == 21
            # State persists call-to-call: the counter increments.
            pool.call(0, "add", 0)
            assert pool.call(0, "calls") == 3

    def test_workers_are_real_processes(self):
        with PersistentProcessPool(_make_handler, [0, 0]) as pool:
            pids = {pool.call(0, "pid"), pool.call(1, "pid")}
            assert os.getpid() not in pids
            assert len(pids) == 2

    def test_scatter_and_broadcast(self):
        with PersistentProcessPool(_make_handler, [100, 200, 300]) as pool:
            results = pool.scatter({0: ("add", 1), 2: ("add", 3)})
            assert results == {0: 101, 2: 303}
            assert pool.broadcast("add", 5) == [105, 205, 305]

    def test_task_failure_raises_but_worker_survives(self):
        with PersistentProcessPool(_make_handler, [1]) as pool:
            with pytest.raises(WorkerError, match="task failed on purpose"):
                pool.call(0, "fail")
            # The worker is still serving requests afterwards.
            assert pool.call(0, "add", 1) == 2

    def test_scatter_drains_failures_without_desync(self):
        with PersistentProcessPool(_make_handler, [1, 2]) as pool:
            with pytest.raises(WorkerError, match="task failed on purpose"):
                pool.scatter({0: ("fail", None), 1: ("add", 1)})
            assert pool.call(0, "add", 0) == 1
            assert pool.call(1, "add", 0) == 2

    def test_init_failure_raises_worker_error(self):
        with pytest.raises(WorkerError, match="init exploded"):
            PersistentProcessPool(_bad_init, [None])

    def test_empty_payloads_rejected(self):
        with pytest.raises(ValueError, match="at least one worker"):
            PersistentProcessPool(_make_handler, [])

    def test_close_then_call_rejected(self):
        pool = PersistentProcessPool(_make_handler, [1])
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.call(0, "add", 1)
        pool.close()  # idempotent

    def test_stats_track_tasks(self):
        with PersistentProcessPool(_make_handler, [1, 2]) as pool:
            pool.call(0, "add", 1)
            pool.call(0, "add", 2)
            pool.call(1, "add", 1)
            stats = pool.worker_stats()
            assert stats[0]["tasks"] == 2
            assert stats[1]["tasks"] == 1
            assert stats[0]["busy_seconds"] >= 0.0
            assert stats[0]["resyncs"] == 0
