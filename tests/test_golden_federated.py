"""Golden regression test: a seeded federated churn scenario.

A two-site scenario with mostly site-local arrivals, one site partition
that heals mid-run, and WAN-constrained gateways is driven through the
inner planners and their federated counterparts; the per-planner
admission/eviction/drop counters are committed as
``tests/fixtures/golden_federated_churn.json``.  Cross-site determinism —
routing, coordinator sync, partition eviction and re-admission — is pinned
the same way ``golden_churn.json`` pins the flat simulator.

When a change is intentional, regenerate the fixture and commit it::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_federated.py -q

The scenario is solver-deterministic (``time_limit=None`` and small enough
to solve every round to proven optimality), so no number in the fixture
depends on machine speed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.api import PlannerConfig, create_planner
from repro.dsps.query import DecompositionMode
from repro.sim import SimulationHarness
from repro.workloads.churn import build_named_churn_schedule
from repro.workloads.scenarios import (
    SimulationScenarioConfig,
    build_simulation_scenario,
)

FIXTURE = Path(__file__).parent / "fixtures" / "golden_federated_churn.json"
PLANNERS = ("heuristic", "sqpr", "federated:heuristic", "federated:sqpr")

GOLDEN_SCENARIO = SimulationScenarioConfig(
    num_hosts=6,
    num_base_streams=14,
    host_cpu_capacity=6.0,
    host_bandwidth=250.0,
    decomposition=DecompositionMode.CANONICAL,
    num_sites=2,
    wan_capacity=120.0,
    seed=3,
)

SCENARIO_NAME = "site_partition"
SCHEDULE_SEED = 11


def build_golden_schedule():
    scenario = build_simulation_scenario(GOLDEN_SCENARIO)
    return scenario, build_named_churn_schedule(
        SCENARIO_NAME, scenario, seed=SCHEDULE_SEED
    )


def run_golden(planner_name: str):
    scenario, schedule = build_golden_schedule()
    planner = create_planner(
        planner_name, scenario.build_catalog(), config=PlannerConfig(time_limit=None)
    )
    return SimulationHarness(planner).run(schedule)


def observed_entry(result) -> dict:
    return {
        "counters": dict(sorted(result.counters.items())),
        "final_active": result.final_active,
    }


def test_schedule_contains_partition_and_recovery():
    _scenario, schedule = build_golden_schedule()
    counts = schedule.counts_by_kind()
    assert counts["SitePartition"] == 1
    assert counts["SiteRecovery"] == 1
    assert counts["QueryArrival"] >= 40


def test_site_partition_scenario_validates_per_event_in_delta_mode():
    """Acceptance criterion: the site-partition scenario passes per-event
    ``validate_delta`` — including the WAN-capacity and site-liveness
    invariants — and the final full-oracle pass."""
    scenario, schedule = build_golden_schedule()
    planner = create_planner(
        "federated:sqpr",
        scenario.build_catalog(),
        config=PlannerConfig(time_limit=None),
    )
    harness = SimulationHarness(planner, validation_mode="delta")
    result = harness.run(schedule)  # raises SimulationError on any violation
    assert result.counters["site_partitions"] == 1
    assert result.counters["site_recoveries"] == 1
    assert result.validate_calls > 0
    assert result.final_violations == []


@pytest.mark.slow
def test_golden_federated_churn_counts_match_fixture():
    observed = {name: observed_entry(run_golden(name)) for name in PLANNERS}

    if os.environ.get("REGEN_GOLDEN"):
        FIXTURE.parent.mkdir(parents=True, exist_ok=True)
        FIXTURE.write_text(json.dumps(observed, indent=2) + "\n", encoding="utf-8")
        pytest.skip(f"regenerated {FIXTURE}")

    expected = json.loads(FIXTURE.read_text(encoding="utf-8"))
    assert observed == expected, (
        "federated churn simulation results drifted from the committed "
        "fixture; if this change is intentional, regenerate with "
        "REGEN_GOLDEN=1 and commit the new fixture"
    )
