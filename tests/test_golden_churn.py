"""Golden regression test: a seeded 200+-event churn scenario.

The per-planner admission/rejection/drop counters of one fixed schedule
are committed as ``tests/fixtures/golden_churn.json``.  Simulator or
planner refactors that change *any* of these numbers fail loudly here
instead of silently shifting results.

When a change is intentional, regenerate the fixture and commit it::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_churn.py -q

The scenario is deliberately solver-deterministic: small enough that the
MILP planner solves every round to proven optimality (``time_limit=None``),
so no number in the fixture depends on machine speed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.api import PlannerConfig, create_planner
from repro.dsps.query import DecompositionMode
from repro.sim import SimulationHarness
from repro.workloads.churn import ChurnTraceConfig, build_churn_schedule
from repro.workloads.scenarios import (
    SimulationScenarioConfig,
    build_simulation_scenario,
)

FIXTURE = Path(__file__).parent / "fixtures" / "golden_churn.json"
PLANNERS = ("heuristic", "optimistic", "soda", "sqpr")

GOLDEN_SCENARIO = SimulationScenarioConfig(
    num_hosts=3,
    num_base_streams=8,
    host_cpu_capacity=5.0,
    host_bandwidth=150.0,
    decomposition=DecompositionMode.CANONICAL,
    seed=3,
)

GOLDEN_TRACE = ChurnTraceConfig(
    duration=185.0,
    arrival_rate=0.55,
    arities=(2,),
    min_lifetime=8.0,
    num_host_failures=2,
    recovery_delay=25.0,
    drift_period=12.0,
    drift_factor=2.2,
    replan_period=18.0,
    seed=2011,
)


def run_golden(planner_name: str):
    scenario = build_simulation_scenario(GOLDEN_SCENARIO)
    schedule = build_churn_schedule(scenario, GOLDEN_TRACE)
    planner = create_planner(
        planner_name, scenario.build_catalog(), config=PlannerConfig(time_limit=None)
    )
    return SimulationHarness(planner).run(schedule)


def observed_entry(result) -> dict:
    return {
        "counters": dict(sorted(result.counters.items())),
        "final_active": result.final_active,
    }


def test_schedule_has_at_least_200_events():
    scenario = build_simulation_scenario(GOLDEN_SCENARIO)
    schedule = build_churn_schedule(scenario, GOLDEN_TRACE)
    assert len(schedule) >= 200
    counts = schedule.counts_by_kind()
    assert counts["HostFailure"] == 2
    assert counts["LoadDrift"] > 0
    assert counts["ReplanTick"] > 0


@pytest.mark.slow
def test_golden_churn_counts_match_fixture():
    observed = {name: observed_entry(run_golden(name)) for name in PLANNERS}

    if os.environ.get("REGEN_GOLDEN"):
        FIXTURE.parent.mkdir(parents=True, exist_ok=True)
        FIXTURE.write_text(json.dumps(observed, indent=2) + "\n", encoding="utf-8")
        pytest.skip(f"regenerated {FIXTURE}")

    expected = json.loads(FIXTURE.read_text(encoding="utf-8"))
    assert observed == expected, (
        "churn simulation results drifted from the committed fixture; if "
        "this change is intentional, regenerate with REGEN_GOLDEN=1 and "
        "commit the new fixture"
    )
