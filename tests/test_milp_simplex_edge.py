"""Edge-case and warm-start tests for the sparse revised simplex.

The happy-path behaviour is covered by ``tests/test_milp_solvers.py`` (and
cross-checked against scipy there).  This module drills into the corners
the vectorized rewrite must get right: degeneracy, infeasibility,
unboundedness, fixed variables, bound handling, and — most importantly —
the guarantee that warm-started solves return the same optimum as cold
solves, no matter how bad the supplied basis is.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.milp.dense_simplex import solve_lp_dense
from repro.milp.simplex import SimplexBasis, solve_lp_simplex
from repro.milp.sparse import CsrMatrix, as_csr

NO_UB = (np.zeros((0, 2)), np.zeros(0))
NO_EQ = (np.zeros((0, 2)), np.zeros(0))


class TestCsrMatrix:
    def test_from_dense_round_trip(self):
        dense = np.array([[1.0, 0.0, 2.0], [0.0, 0.0, 0.0], [-3.0, 4.0, 0.0]])
        csr = CsrMatrix.from_dense(dense)
        assert csr.shape == (3, 3)
        assert csr.nnz == 4
        assert np.allclose(csr.toarray(), dense)

    def test_matvec_and_rmatvec_match_dense(self):
        rng = np.random.default_rng(7)
        dense = rng.uniform(-2, 2, (5, 8)) * (rng.random((5, 8)) < 0.4)
        csr = CsrMatrix.from_dense(dense)
        x = rng.uniform(-1, 1, 8)
        y = rng.uniform(-1, 1, 5)
        assert np.allclose(csr.matvec(x), dense @ x)
        assert np.allclose(csr.rmatvec(y), y @ dense)

    def test_column_access(self):
        dense = np.array([[1.0, 0.0], [0.0, 2.0], [3.0, -1.0]])
        csr = CsrMatrix.from_dense(dense)
        rows, vals = csr.column(1)
        assert list(rows) == [1, 2]
        assert list(vals) == [2.0, -1.0]
        rows0, vals0 = CsrMatrix.empty(2).column(0)
        assert len(rows0) == 0 and len(vals0) == 0

    def test_from_rows_and_vstack(self):
        top = CsrMatrix.from_rows([([0, 2], [1.0, 2.0])], 3)
        bottom = CsrMatrix.from_rows([([1], [5.0]), ([], [])], 3)
        stacked = CsrMatrix.vstack([top, bottom])
        assert stacked.shape == (3, 3)
        assert np.allclose(
            stacked.toarray(), [[1.0, 0.0, 2.0], [0.0, 5.0, 0.0], [0.0, 0.0, 0.0]]
        )

    def test_size_mimics_ndarray(self):
        csr = CsrMatrix.empty(4)
        assert csr.size == 0
        assert as_csr(np.array([[1.0, 0.0]]), 2).size == 2


class TestSimplexEdgeCases:
    def test_degenerate_lp(self):
        # Redundant constraints create degenerate vertices; the solver must
        # still terminate at the optimum.
        c = np.array([-1.0, -1.0])
        a_ub = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        b_ub = np.array([1.0, 1.0, 2.0])
        sol = solve_lp_simplex(c, a_ub, b_ub, *NO_EQ, np.zeros(2), np.full(2, np.inf))
        assert sol.is_optimal
        assert sol.objective == pytest.approx(-1.0)

    def test_infeasible_inequalities(self):
        c = np.array([1.0])
        a_ub = np.array([[1.0], [-1.0]])
        b_ub = np.array([1.0, -3.0])  # x <= 1 and x >= 3
        sol = solve_lp_simplex(
            c, a_ub, b_ub, np.zeros((0, 1)), np.zeros(0), np.zeros(1), np.array([np.inf])
        )
        assert sol.status == "infeasible"

    def test_infeasible_equalities(self):
        c = np.array([0.0, 0.0])
        a_eq = np.array([[1.0, 1.0], [1.0, 1.0]])
        b_eq = np.array([1.0, 2.0])  # x+y == 1 and x+y == 2
        sol = solve_lp_simplex(c, *NO_UB, a_eq, b_eq, np.zeros(2), np.full(2, np.inf))
        assert sol.status == "infeasible"

    def test_infeasible_through_bounds(self):
        c = np.array([0.0, 0.0])
        a_eq = np.array([[1.0, 1.0]])
        b_eq = np.array([10.0])  # unreachable with x, y <= 2
        sol = solve_lp_simplex(c, *NO_UB, a_eq, b_eq, np.zeros(2), np.array([2.0, 2.0]))
        assert sol.status == "infeasible"

    def test_unbounded(self):
        c = np.array([-1.0, 0.0])
        a_ub = np.array([[0.0, 1.0]])
        b_ub = np.array([5.0])
        sol = solve_lp_simplex(
            c, a_ub, b_ub, np.zeros((0, 2)), np.zeros(0), np.zeros(2), np.full(2, np.inf)
        )
        assert sol.status == "unbounded"

    def test_fixed_variables(self):
        # lb == ub variables must never pivot; the optimum is forced.
        c = np.array([1.0, 1.0])
        a_ub = np.array([[-1.0, -1.0]])
        b_ub = np.array([-3.0])  # x + y >= 3
        lower = np.array([2.0, 0.0])
        upper = np.array([2.0, np.inf])  # x fixed at 2
        sol = solve_lp_simplex(c, a_ub, b_ub, *NO_EQ, lower, upper)
        assert sol.is_optimal
        assert sol.x[0] == pytest.approx(2.0)
        assert sol.objective == pytest.approx(3.0)

    def test_negative_lower_bounds(self):
        c = np.array([1.0, 1.0])
        a_eq = np.array([[1.0, -1.0]])
        b_eq = np.array([1.0])
        lower = np.array([-5.0, -5.0])
        upper = np.array([5.0, 5.0])
        sol = solve_lp_simplex(c, *NO_UB, a_eq, b_eq, lower, upper)
        assert sol.is_optimal
        # x - y == 1 with min x + y  ->  x = -4, y = -5.
        assert sol.objective == pytest.approx(-9.0)

    def test_infinite_lower_bound_rejected(self):
        c = np.array([1.0])
        with pytest.raises(ValueError):
            solve_lp_simplex(
                c,
                np.zeros((0, 1)),
                np.zeros(0),
                np.zeros((0, 1)),
                np.zeros(0),
                np.array([-np.inf]),
                np.array([np.inf]),
            )

    def test_accepts_csr_inputs(self):
        c = np.array([-3.0, -2.0])
        a_ub = CsrMatrix.from_dense(np.array([[1.0, 1.0], [1.0, 0.0]]))
        sol = solve_lp_simplex(
            c, a_ub, np.array([4.0, 2.0]), CsrMatrix.empty(2), np.zeros(0),
            np.zeros(2), np.full(2, np.inf),
        )
        assert sol.is_optimal
        assert sol.objective == pytest.approx(-10.0)

    def test_matches_dense_reference_on_random_instances(self):
        rng = np.random.default_rng(11)
        for _ in range(25):
            n = int(rng.integers(2, 6))
            m = int(rng.integers(1, 5))
            c = rng.uniform(-4, 4, n)
            a_ub = rng.uniform(-2, 3, (m, n))
            b_ub = rng.uniform(1, 8, m)
            lower = np.zeros(n)
            upper = rng.uniform(1, 6, n)
            sparse = solve_lp_simplex(c, a_ub, b_ub, np.zeros((0, n)), np.zeros(0), lower, upper)
            dense = solve_lp_dense(c, a_ub, b_ub, np.zeros((0, n)), np.zeros(0), lower, upper)
            assert sparse.status == dense.status
            if sparse.is_optimal:
                assert sparse.objective == pytest.approx(dense.objective, rel=1e-6, abs=1e-6)


def _branchy_lp():
    """A small LP whose re-solves with tightened bounds mimic B&B children."""
    c = np.array([-5.0, -4.0, -3.0])
    a_ub = np.array([[2.0, 3.0, 1.0], [4.0, 1.0, 2.0], [3.0, 4.0, 2.0]])
    b_ub = np.array([5.0, 11.0, 8.0])
    lower = np.zeros(3)
    upper = np.full(3, 10.0)
    return c, a_ub, b_ub, np.zeros((0, 3)), np.zeros(0), lower, upper


class TestWarmStart:
    def test_warm_start_returns_basis(self):
        sol = solve_lp_simplex(*_branchy_lp())
        assert sol.is_optimal
        assert sol.basis is not None
        assert isinstance(sol.basis, SimplexBasis)

    def test_warm_equals_cold_after_bound_tightening(self):
        c, a_ub, b_ub, a_eq, b_eq, lower, upper = _branchy_lp()
        parent = solve_lp_simplex(c, a_ub, b_ub, a_eq, b_eq, lower, upper)
        for j in range(3):
            for tightened in ("down", "up"):
                lo, up = lower.copy(), upper.copy()
                if tightened == "down":
                    up[j] = 0.0
                else:
                    lo[j] = 1.0
                cold = solve_lp_simplex(c, a_ub, b_ub, a_eq, b_eq, lo, up)
                warm = solve_lp_simplex(
                    c, a_ub, b_ub, a_eq, b_eq, lo, up, warm_basis=parent.basis
                )
                assert warm.status == cold.status
                if cold.is_optimal:
                    assert warm.objective == pytest.approx(cold.objective, abs=1e-7)

    def test_warm_start_skips_phase_one_when_feasible(self):
        args = _branchy_lp()
        parent = solve_lp_simplex(*args)
        resolved = solve_lp_simplex(*args, warm_basis=parent.basis)
        assert resolved.is_optimal
        assert resolved.objective == pytest.approx(parent.objective)
        # Re-solving from the optimal basis needs only the optimality check.
        assert resolved.iterations <= parent.iterations

    def test_garbage_warm_basis_degrades_to_cold(self):
        c, a_ub, b_ub, a_eq, b_eq, lower, upper = _branchy_lp()
        cold = solve_lp_simplex(c, a_ub, b_ub, a_eq, b_eq, lower, upper)
        num_cols = len(cold.basis.at_upper)
        garbage = [
            SimplexBasis(np.array([0, 0, 0]), np.zeros(num_cols, dtype=bool)),  # singular
            SimplexBasis(np.array([99, 100, 101]), np.zeros(num_cols, dtype=bool)),  # range
            SimplexBasis(np.array([0]), np.zeros(num_cols, dtype=bool)),  # wrong m
            SimplexBasis(np.array([0, 1, 2]), np.zeros(3, dtype=bool)),  # wrong width
        ]
        for basis in garbage:
            warm = solve_lp_simplex(c, a_ub, b_ub, a_eq, b_eq, lower, upper, warm_basis=basis)
            assert warm.is_optimal
            assert warm.objective == pytest.approx(cold.objective)

    def test_warm_start_on_infeasible_child(self):
        c, a_ub, b_ub, a_eq, b_eq, lower, upper = _branchy_lp()
        parent = solve_lp_simplex(c, a_ub, b_ub, a_eq, b_eq, lower, upper)
        lo = lower.copy()
        lo[:] = 2.0  # 2*2 + 3*2 + 2 > 5: infeasible
        warm = solve_lp_simplex(c, a_ub, b_ub, a_eq, b_eq, lo, upper, warm_basis=parent.basis)
        assert warm.status == "infeasible"
