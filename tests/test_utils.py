"""Tests for the shared utilities (rng, timers, validation)."""

from __future__ import annotations

import math
import time

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.timer import Deadline, Stopwatch
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.allclose(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")

    def test_spawn_rng_is_deterministic_given_parent_state(self):
        child_a = spawn_rng(ensure_rng(7), "component")
        child_b = spawn_rng(ensure_rng(7), "component")
        assert np.allclose(child_a.random(4), child_b.random(4))


class TestTimers:
    def test_stopwatch_monotonic(self):
        watch = Stopwatch()
        first = watch.elapsed()
        second = watch.elapsed()
        assert second >= first >= 0.0

    def test_stopwatch_restart(self):
        watch = Stopwatch()
        time.sleep(0.01)
        watch.restart()
        assert watch.elapsed() < 0.01

    def test_deadline_unlimited(self):
        deadline = Deadline(None)
        assert deadline.remaining() == math.inf
        assert not deadline.expired()

    def test_deadline_expires(self):
        deadline = Deadline(0.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_deadline_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)


class TestValidation:
    def test_check_positive_accepts_positive(self):
        assert check_positive("x", 3) == 3.0

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    def test_check_non_negative_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -0.1)

    def test_check_probability_bounds(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_in_range(self):
        assert check_in_range("v", 5, 0, 10) == 5.0
        with pytest.raises(ValueError):
            check_in_range("v", 11, 0, 10)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            check_non_negative("x", float("nan"))
