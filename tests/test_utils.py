"""Tests for the shared utilities (rng, timers, validation)."""

from __future__ import annotations

import math
import time

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.timer import Deadline, Stopwatch
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.allclose(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")

    def test_spawn_rng_is_deterministic_given_parent_state(self):
        child_a = spawn_rng(ensure_rng(7), "component")
        child_b = spawn_rng(ensure_rng(7), "component")
        assert np.allclose(child_a.random(4), child_b.random(4))


class TestTimers:
    def test_stopwatch_monotonic(self):
        watch = Stopwatch()
        first = watch.elapsed()
        second = watch.elapsed()
        assert second >= first >= 0.0

    def test_stopwatch_restart(self):
        watch = Stopwatch()
        time.sleep(0.01)
        watch.restart()
        assert watch.elapsed() < 0.01

    def test_deadline_unlimited(self):
        deadline = Deadline(None)
        assert deadline.remaining() == math.inf
        assert not deadline.expired()

    def test_deadline_expires(self):
        deadline = Deadline(0.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_deadline_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)


class TestValidation:
    def test_check_positive_accepts_positive(self):
        assert check_positive("x", 3) == 3.0

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    def test_check_non_negative_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -0.1)

    def test_check_probability_bounds(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_in_range(self):
        assert check_in_range("v", 5, 0, 10) == 5.0
        with pytest.raises(ValueError):
            check_in_range("v", 11, 0, 10)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            check_non_negative("x", float("nan"))


class TestMapInPool:
    def test_preserves_order_sequential_and_pooled(self):
        from repro.utils.pool import map_in_pool

        items = list(range(20))
        assert map_in_pool(lambda x: x * x, items) == [x * x for x in items]
        assert map_in_pool(lambda x: x * x, items, workers=4) == [
            x * x for x in items
        ]
        assert map_in_pool(lambda x: x, []) == []
        assert map_in_pool(lambda x: x, [], workers=8) == []

    def test_negative_workers_is_an_error_not_sequential(self):
        from repro.utils.pool import map_in_pool

        # A negative width used to fall through ``workers or 1`` into the
        # silent sequential path; it is a caller bug and must be loud.
        with pytest.raises(ValueError, match="workers must be >= 0"):
            map_in_pool(lambda x: x, [1, 2, 3], workers=-1)
        with pytest.raises(ValueError, match="got -4"):
            map_in_pool(lambda x: x, [1, 2, 3], workers=-4)
        # Zero and None still mean "sequential in the calling thread".
        assert map_in_pool(lambda x: x + 1, [1, 2], workers=0) == [2, 3]
        assert map_in_pool(lambda x: x + 1, [1, 2], workers=None) == [2, 3]

    def test_first_failure_propagates_and_cancels_the_tail(self):
        import threading

        from repro.utils.pool import map_in_pool

        started: list = []
        gate = threading.Event()

        def work(item):
            started.append(item)
            if item == 0:
                # Fail fast while the rest of the batch is still queued
                # behind the single worker.
                raise RuntimeError("boom")
            gate.wait(0.01)
            return item

        with pytest.raises(RuntimeError, match="boom"):
            map_in_pool(work, list(range(64)), workers=2)
        # The not-yet-started remainder must have been cancelled rather
        # than run to completion after the failure propagated.
        assert len(started) < 64

    def test_exception_order_matches_sequential_semantics(self):
        from repro.utils.pool import map_in_pool

        def work(item):
            if item % 3 == 0:
                raise ValueError(f"item {item}")
            return item

        # The first failing item in submission order wins, like the
        # sequential loop.
        with pytest.raises(ValueError, match="item 0"):
            map_in_pool(work, list(range(8)), workers=4)
