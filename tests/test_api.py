"""Tests for the unified planner API: protocol, outcome, registry, hooks."""

from __future__ import annotations

import pytest

import repro
from repro.api import (
    Planner,
    PlannerConfig,
    PlanningOutcome,
    available_planners,
    create_planner,
    get_planner_class,
    register_planner,
    resolve_planner_name,
    unregister_planner,
)
from repro.baselines.heuristic import HeuristicPlanner
from repro.baselines.soda.planner import SodaPlanner
from repro.core.optimistic import OptimisticBoundPlanner
from repro.core.planner import SQPRPlanner
from repro.exceptions import PlanningError
from tests.conftest import make_catalog, query_over

ALL_PLANNERS = ("sqpr", "heuristic", "soda", "optimistic")


class TestRegistry:
    def test_all_builtins_registered(self):
        names = available_planners()
        for name in ALL_PLANNERS:
            assert name in names

    def test_create_planner_round_trip(self, tiny_catalog):
        expected = {
            "sqpr": SQPRPlanner,
            "heuristic": HeuristicPlanner,
            "soda": SodaPlanner,
            "optimistic": OptimisticBoundPlanner,
        }
        for name, cls in expected.items():
            planner = create_planner(
                name, make_catalog(), config=PlannerConfig(time_limit=0.3)
            )
            assert isinstance(planner, cls)
            assert isinstance(planner, Planner)
            assert planner.name == name
            assert get_planner_class(name) is cls

    def test_alias_resolves_to_canonical(self):
        assert resolve_planner_name("optimistic_bound") == "optimistic"
        planner = create_planner("optimistic_bound", make_catalog())
        assert isinstance(planner, OptimisticBoundPlanner)

    def test_unknown_name_lists_registered(self):
        with pytest.raises(PlanningError, match="sqpr"):
            create_planner("cplex", make_catalog())

    def test_register_and_unregister_custom_planner(self, tiny_catalog):
        @register_planner("always-reject")
        class AlwaysReject(Planner):
            def submit(self, query):
                return self._record(
                    PlanningOutcome(
                        query=self._resolve_query(query),
                        admitted=False,
                        rejection_reason="policy",
                    )
                )

        try:
            planner = create_planner("always-reject", tiny_catalog)
            outcome = planner.submit(query_over("b0", "b1"))
            assert not outcome.admitted
            assert planner.num_admitted == 0 and planner.num_submitted == 1
        finally:
            unregister_planner("always-reject")
        assert "always-reject" not in available_planners()

    def test_register_rejects_non_planner(self):
        with pytest.raises(PlanningError):
            register_planner("bogus", object)

    def test_second_registration_does_not_rename_existing(self):
        register_planner("sqpr-tuned", SQPRPlanner)
        try:
            original = create_planner(
                "sqpr", make_catalog(), config=PlannerConfig(time_limit=0.3)
            )
            tuned = create_planner(
                "sqpr-tuned", make_catalog(), config=PlannerConfig(time_limit=0.3)
            )
            assert original.name == "sqpr"
            assert tuned.name == "sqpr-tuned"
            assert SQPRPlanner.name == "sqpr"
        finally:
            unregister_planner("sqpr-tuned")

    def test_explicit_registration_overrides_alias(self):
        @register_planner("optimistic_bound")
        class Stub(Planner):
            def submit(self, query):
                return self._record(
                    PlanningOutcome(query=self._resolve_query(query), admitted=False)
                )

        try:
            planner = create_planner("optimistic_bound", make_catalog())
            assert isinstance(planner, Stub)
        finally:
            unregister_planner("optimistic_bound")
        # unregistering restores the displaced built-in alias
        restored = create_planner("optimistic_bound", make_catalog())
        assert isinstance(restored, OptimisticBoundPlanner)


class TestUnifiedOutcome:
    def test_every_planner_returns_planning_outcome(self):
        for name in ALL_PLANNERS:
            planner = create_planner(
                name, make_catalog(), config=PlannerConfig(time_limit=0.3)
            )
            outcome = planner.submit(query_over("b0", "b1"))
            assert type(outcome) is PlanningOutcome
            assert isinstance(outcome.admitted, bool)
            assert outcome.planning_time >= 0.0

    def test_legacy_field_parity(self, tiny_catalog):
        """The old per-planner outcome fields remain readable via extras."""
        sqpr = create_planner("sqpr", make_catalog(), config=PlannerConfig(time_limit=0.5))
        outcome = sqpr.submit(query_over("b0", "b1"))
        assert outcome.model_size > 0
        assert outcome.scope_streams >= 1
        assert outcome.solve_result is not None

        heuristic = create_planner("heuristic", make_catalog())
        outcome = heuristic.submit(query_over("b0", "b1"))
        assert outcome.admitted and outcome.host is not None

        optimistic = create_planner("optimistic", make_catalog())
        outcome = optimistic.submit(query_over("b0", "b1"))
        assert outcome.marginal_cpu > 0.0

        soda = create_planner("soda", make_catalog(num_hosts=1, cpu=1.2))
        outcomes = soda.submit_epoch([query_over("b0", "b1"), query_over("b2", "b3")])
        rejected = [o for o in outcomes if not o.admitted]
        assert rejected and rejected[0].rejected_by in ("macroq", "macrow")
        assert rejected[0].rejection_reason == rejected[0].rejected_by

    def test_extras_defaults_cross_planner(self):
        """Well-known extras read as neutral defaults on other planners."""
        outcome = PlanningOutcome(query=None, admitted=True)
        assert outcome.solve_result is None
        assert outcome.host is None
        assert outcome.marginal_cpu == 0.0
        assert outcome.rejected_by == ""
        with pytest.raises(AttributeError):
            outcome.not_a_field

    def test_deprecated_outcome_aliases_warn(self):
        for legacy in ("HeuristicOutcome", "SodaOutcome", "OptimisticOutcome"):
            with pytest.warns(DeprecationWarning):
                alias = getattr(repro, legacy)
            assert alias is PlanningOutcome

    def test_record_plans_config(self):
        planner = create_planner(
            "heuristic", make_catalog(), config=PlannerConfig(record_plans=True)
        )
        outcome = planner.submit(query_over("b0", "b1"))
        assert outcome.admitted
        assert outcome.plan is not None
        assert outcome.plan.query_stream == outcome.query.result_stream


class TestStatsParity:
    """The PlannerStats mixin must reproduce the pre-unification counters."""

    def test_counts_match_allocation_and_outcomes(self):
        workload = [
            query_over("b0", "b1"),
            query_over("b1", "b2"),
            query_over("b0", "b1"),  # duplicate result stream
            query_over("b2", "b3"),
        ]
        for name in ALL_PLANNERS:
            planner = create_planner(
                name, make_catalog(), config=PlannerConfig(time_limit=0.3)
            )
            for item in workload:
                planner.submit(item)
            assert planner.num_submitted == len(workload) == len(planner.outcomes)
            outcome_admitted = sum(1 for o in planner.outcomes if o.admitted)
            # Without re-planning, the allocation-based and outcome-based
            # counts coincide (the seed planners used one or the other).
            assert planner.num_admitted == outcome_admitted
            allocation = getattr(planner, "allocation", None)
            if allocation is not None:
                assert planner.num_admitted == len(allocation.admitted_queries)
            assert 0.0 <= planner.admission_rate() <= 1.0
            assert planner.average_planning_time() >= 0.0

    def test_reset_restores_fresh_state(self):
        for name in ALL_PLANNERS:
            planner = create_planner(
                name, make_catalog(), config=PlannerConfig(time_limit=0.3)
            )
            first = planner.submit(query_over("b0", "b1"))
            assert first.admitted
            planner.reset()
            assert planner.num_submitted == 0 and planner.num_admitted == 0
            allocation = getattr(planner, "allocation", None)
            if allocation is not None:
                assert not allocation.admitted_queries
            again = planner.submit(query_over("b0", "b1"))
            assert again.admitted


class TestCrossPlannerSmoke:
    def test_shared_workload_through_every_registered_planner(self):
        """One workload, every registered planner, one protocol."""
        workload = [
            query_over("b0", "b1"),
            query_over("b1", "b2"),
            query_over("b0", "b1", "b2"),
        ]
        for name in available_planners():
            planner = create_planner(
                name, make_catalog(), config=PlannerConfig(time_limit=0.3)
            )
            outcomes = planner.submit_batch(workload)
            assert len(outcomes) == len(workload)
            assert all(type(o) is PlanningOutcome for o in outcomes)
            assert planner.num_submitted == len(workload)
            allocation = getattr(planner, "allocation", None)
            if allocation is not None:
                assert allocation.validate() == []


class TestFigureDriverEdges:
    def test_fig4a_sqpr_only_still_has_submitted_series(self, small_scenario):
        from repro.experiments.figures import fig4a_planning_efficiency

        result = fig4a_planning_efficiency(
            scenario=small_scenario,
            num_queries=3,
            timeouts=(0.1,),
            checkpoint_every=1,
            baselines=(),
        )
        assert result.series["submitted"]

    def test_fig4a_baselines_only_does_not_crash(self, small_scenario):
        from repro.experiments.figures import fig4a_planning_efficiency

        result = fig4a_planning_efficiency(
            scenario=small_scenario,
            num_queries=3,
            timeouts=(),
            checkpoint_every=1,
            baselines=("heuristic",),
        )
        assert result.series["submitted"]
        assert "heuristic" in result.series

    def test_fig7b_skips_planner_without_allocation(self, small_scenario):
        from repro.experiments.figures import fig7b_cpu_distribution

        result = fig7b_cpu_distribution(
            scenario=small_scenario,
            query_counts=(2,),
            time_limit=0.1,
            planners=("heuristic", "optimistic"),
        )
        assert "heuristic_2_cpu_pct" in result.series
        assert "optimistic_2_cpu_pct" not in result.series


class TestRunnerIntegration:
    def test_run_admission_experiment_accepts_planner_name(self):
        from repro.experiments.runner import run_admission_experiment

        workload = [query_over("b0", "b1"), query_over("b1", "b2")]
        curve = run_admission_experiment(
            "heuristic",
            workload,
            checkpoint_every=1,
            catalog=make_catalog(),
        )
        assert curve.planner_name == "heuristic"
        assert curve.total_submitted == len(workload)

    def test_run_admission_experiment_name_requires_catalog(self):
        with pytest.raises(PlanningError, match="catalog"):
            from repro.experiments.runner import run_admission_experiment

            run_admission_experiment("heuristic", [query_over("b0", "b1")])


class TestHooks:
    def test_admit_and_reject_hooks_fire(self):
        planner = create_planner(
            "soda", make_catalog(num_hosts=1, cpu=1.2), config=PlannerConfig()
        )
        admitted, rejected = [], []
        planner.on_admit(admitted.append)
        planner.on_reject(rejected.append)
        planner.submit_batch([query_over("b0", "b1"), query_over("b2", "b3")])
        assert len(admitted) + len(rejected) == 2
        assert len(admitted) == sum(1 for o in planner.outcomes if o.admitted)
        assert all(not o.admitted for o in rejected)

    def test_on_replan_hook_fires(self):
        from repro.core.adaptive import AdaptiveReplanner
        from repro.dsps.resource_monitor import ResourceMonitor

        catalog = make_catalog()
        planner = create_planner("sqpr", catalog, config=PlannerConfig(time_limit=0.5))
        outcome = planner.submit(query_over("b0", "b1"))
        assert outcome.admitted
        reports = []
        planner.on_replan(reports.append)
        replanner = AdaptiveReplanner(planner, ResourceMonitor(catalog))
        report = replanner.replan(victim_ids=[outcome.query.query_id])
        assert reports == [report]
        assert report.victims == [outcome.query.query_id]


class TestTopLevelExports:
    """The main user-facing entry points are importable from ``repro``
    directly, so examples and docs never reach into submodules."""

    def test_primary_entry_points_are_exported(self):
        import repro

        for name in (
            "create_planner",
            "SimulationHarness",
            "CHURN_SCENARIOS",
            "run_churn_experiment",
            "run_named_churn_experiment",
            "FederatedPlanner",
            "SiteCatalogView",
            "SitePartition",
            "SiteRecovery",
            "WanDrift",
            "build_named_churn_schedule",
        ):
            assert hasattr(repro, name), name
            assert name in repro.__all__, name

    def test_lazy_timeline_exports_resolve(self):
        import repro
        from repro.experiments import timeline

        assert repro.run_churn_experiment is timeline.run_churn_experiment
        assert repro.run_named_churn_experiment is timeline.run_named_churn_experiment

    def test_unknown_attribute_still_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing
