"""Tests for the reduced MILP construction and solution decoding."""

from __future__ import annotations

import pytest

from repro.core.model_builder import build_model
from repro.core.reduction import compute_scope
from repro.core.solution import decode_solution
from repro.core.weights import ObjectiveWeights
from repro.dsps.allocation import Allocation
from repro.milp import MilpSolver
from tests.conftest import make_catalog, query_over


def solve_for(catalog, allocation, queries, **build_kwargs):
    weights = ObjectiveWeights.paper_default(catalog)
    scope = compute_scope(catalog, allocation, queries)
    built = build_model(catalog, allocation, scope, weights, **build_kwargs)
    result = MilpSolver(time_limit=10.0).solve(built.model)
    return built, result


class TestModelStructure:
    def test_variable_counts(self, tiny_catalog):
        query = tiny_catalog.register_query(query_over("b0", "b1"))
        allocation = Allocation(tiny_catalog)
        weights = ObjectiveWeights.paper_default(tiny_catalog)
        scope = compute_scope(tiny_catalog, allocation, [query])
        built = build_model(tiny_catalog, allocation, scope, weights)
        hosts = tiny_catalog.num_hosts
        streams = len(scope.streams)
        assert len(built.y_vars) == hosts * streams
        assert len(built.x_vars) == hosts * (hosts - 1) * streams
        assert len(built.d_vars) == hosts  # only the new result stream
        assert len(built.z_vars) == hosts * len(scope.operators)
        assert built.model.num_integer_variables == (
            len(built.y_vars) + len(built.x_vars) + len(built.d_vars) + len(built.z_vars)
        )

    def test_empty_catalog_rejected(self):
        from repro.dsps.catalog import SystemCatalog
        from repro.core.reduction import ReplanScope
        from repro.exceptions import ModelError

        catalog = SystemCatalog()
        scope = ReplanScope(
            new_queries=frozenset(),
            streams=frozenset(),
            operators=frozenset(),
            keep_provided=frozenset(),
            replanned_queries=frozenset(),
        )
        with pytest.raises(ModelError):
            build_model(catalog, Allocation(catalog), scope, ObjectiveWeights.admission_only())

    def test_frozen_mode_credits_existing_placements(self, tiny_catalog):
        q1 = tiny_catalog.register_query(query_over("b0", "b1"))
        q2 = tiny_catalog.register_query(query_over("b0", "b1", "b2"))
        operator = tiny_catalog.producers_of(q1.result_stream)[0]
        allocation = Allocation(tiny_catalog)
        allocation.available |= {(0, 0), (0, 1), (0, q1.result_stream)}
        allocation.placements.add((0, operator.operator_id))
        allocation.provided[q1.result_stream] = 0
        allocation.admitted_queries.add(q1.query_id)
        weights = ObjectiveWeights.paper_default(tiny_catalog)
        scope = compute_scope(
            tiny_catalog, allocation, [q2], replan_overlapping=False
        )
        built = build_model(
            tiny_catalog, allocation, scope, weights, frozen_mode=True
        )
        assert (0, operator.operator_id) in built.placed_operator_credit
        assert (0, q1.result_stream) in built.availability_credit
        assert built.teardown_streams == frozenset()
        assert built.teardown_operators == frozenset()


class TestSolveAndDecode:
    def test_first_query_is_admitted_and_feasible(self, tiny_catalog):
        query = tiny_catalog.register_query(query_over("b0", "b1"))
        allocation = Allocation(tiny_catalog)
        built, result = solve_for(tiny_catalog, allocation, [query])
        assert result.has_solution
        decoded = decode_solution(tiny_catalog, allocation, built, result)
        assert query.query_id in decoded.admitted_new_queries
        allocation.apply(decoded.delta)
        assert allocation.validate() == []
        assert allocation.is_provided(query.result_stream)

    def test_infeasible_when_no_cpu(self):
        catalog = make_catalog(num_hosts=2, cpu=0.05, num_base=2)
        query = catalog.register_query(query_over("b0", "b1"))
        allocation = Allocation(catalog)
        built, result = solve_for(catalog, allocation, [query])
        if result.has_solution:
            decoded = decode_solution(catalog, allocation, built, result)
            assert query.query_id not in decoded.admitted_new_queries

    def test_force_admission_makes_impossible_model_infeasible(self):
        catalog = make_catalog(num_hosts=2, cpu=0.05, num_base=2)
        query = catalog.register_query(query_over("b0", "b1"))
        allocation = Allocation(catalog)
        built, result = solve_for(
            catalog, allocation, [query], force_admission=True
        )
        assert not result.has_solution

    def test_relay_disabled_still_plans_direct_transfers(self, tiny_catalog):
        query = tiny_catalog.register_query(query_over("b0", "b1"))
        allocation = Allocation(tiny_catalog)
        built, result = solve_for(tiny_catalog, allocation, [query], allow_relay=False)
        decoded = decode_solution(tiny_catalog, allocation, built, result)
        assert query.query_id in decoded.admitted_new_queries
        allocation.apply(decoded.delta)
        assert allocation.validate() == []

    def test_reuse_of_admitted_subquery(self, tiny_catalog):
        """A second query sharing the first one's join must not pay for it twice."""
        q1 = tiny_catalog.register_query(query_over("b0", "b1"))
        allocation = Allocation(tiny_catalog)
        built, result = solve_for(tiny_catalog, allocation, [q1])
        decoded = decode_solution(tiny_catalog, allocation, built, result)
        allocation.apply(decoded.delta)
        cpu_after_first = allocation.total_cpu_used()

        q2 = tiny_catalog.register_query(query_over("b0", "b1", "b2"))
        built2, result2 = solve_for(tiny_catalog, allocation, [q2])
        decoded2 = decode_solution(tiny_catalog, allocation, built2, result2)
        assert q2.query_id in decoded2.admitted_new_queries
        allocation.apply(decoded2.delta)
        assert allocation.validate() == []
        # The three-way join must reuse the two-way sub-join: only one extra
        # operator's worth of CPU may be added.
        extra = allocation.total_cpu_used() - cpu_after_first
        operators = [tiny_catalog.get_operator(o) for o in q2.candidate_operators]
        max_single = max(op.cpu_cost for op in operators)
        assert extra <= max_single + 1e-6

    def test_keep_admitted_constraint_preserves_existing_query(self, tiny_catalog):
        q1 = tiny_catalog.register_query(query_over("b0", "b1"))
        allocation = Allocation(tiny_catalog)
        built, result = solve_for(tiny_catalog, allocation, [q1])
        allocation.apply(decode_solution(tiny_catalog, allocation, built, result).delta)

        q2 = tiny_catalog.register_query(query_over("b0", "b1", "b3"))
        built2, result2 = solve_for(tiny_catalog, allocation, [q2])
        decoded2 = decode_solution(tiny_catalog, allocation, built2, result2)
        allocation.apply(decoded2.delta)
        # (IV.9): q1's result stream must still be provided after re-planning.
        assert allocation.is_provided(q1.result_stream)
        assert allocation.validate() == []
