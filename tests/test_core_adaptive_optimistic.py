"""Tests for adaptive re-planning (§IV-B) and the optimistic bound (§V-A)."""

from __future__ import annotations

import pytest

from repro.core.adaptive import AdaptiveReplanner, garbage_collect
from repro.core.optimistic import OptimisticBoundPlanner
from repro.core.planner import PlannerConfig, SQPRPlanner
from repro.dsps.resource_monitor import ResourceMonitor
from tests.conftest import make_catalog, query_over


def planner_with_queries(names_list, **catalog_kwargs):
    catalog = make_catalog(**catalog_kwargs)
    planner = SQPRPlanner(
        catalog, config=PlannerConfig(time_limit=5.0, validate_after_apply=True)
    )
    for names in names_list:
        planner.submit(query_over(*names))
    return catalog, planner


class TestGarbageCollect:
    def test_collect_preserves_admitted_queries(self):
        catalog, planner = planner_with_queries(
            [("b0", "b1"), ("b1", "b2"), ("b0", "b1", "b2")]
        )
        collected = garbage_collect(catalog, planner.allocation)
        assert collected.admitted_queries == planner.allocation.admitted_queries
        assert collected.validate() == []
        for query_id in collected.admitted_queries:
            query = catalog.get_query(query_id)
            assert collected.is_provided(query.result_stream)

    def test_collect_drops_orphaned_structures(self):
        catalog, planner = planner_with_queries([("b0", "b1")])
        allocation = planner.allocation
        # Orphan: base stream b3 is not used by any admitted query, so any
        # structure shipping it around must be collected away.
        allocation.available.add((0, 3))
        allocation.available.add((1, 3))
        allocation.flows.add((0, 1, 3))
        collected = garbage_collect(catalog, allocation)
        assert (0, 1, 3) not in collected.flows
        assert (1, 3) not in collected.available


class TestAdaptiveReplanner:
    def test_no_victims_when_no_drift(self):
        catalog, planner = planner_with_queries([("b0", "b1"), ("b1", "b2")])
        monitor = ResourceMonitor(catalog)
        replanner = AdaptiveReplanner(planner, monitor)
        assert replanner.queries_needing_replan() == []
        report = replanner.replan()
        assert report.victims == []

    def test_drifted_query_is_replanned(self):
        catalog, planner = planner_with_queries([("b0", "b1"), ("b2", "b3")])
        monitor = ResourceMonitor(catalog)
        # Make the first query's operator drift well past the threshold.
        first_query = catalog.get_query(0)
        operator_id = next(iter(first_query.candidate_operators))
        monitor.set_operator_drift(operator_id, 1.5)
        replanner = AdaptiveReplanner(planner, monitor, drift_threshold=0.2)
        victims = replanner.queries_needing_replan()
        assert 0 in victims
        report = replanner.replan(victims)
        assert 0 in report.victims
        assert report.fully_recovered
        assert planner.allocation.validate() == []
        assert 0 in planner.allocation.admitted_queries

    def test_explicit_victims_are_readmitted(self):
        catalog, planner = planner_with_queries([("b0", "b1"), ("b1", "b2")])
        monitor = ResourceMonitor(catalog)
        replanner = AdaptiveReplanner(planner, monitor)
        report = replanner.replan([0])
        assert report.victims == [0]
        assert 0 in report.readmitted
        assert planner.allocation.validate() == []

    def test_unknown_victims_ignored(self):
        catalog, planner = planner_with_queries([("b0", "b1")])
        monitor = ResourceMonitor(catalog)
        replanner = AdaptiveReplanner(planner, monitor)
        report = replanner.replan([999])
        assert report.victims == []


class TestOptimisticBound:
    def test_counts_reuse(self, tiny_catalog):
        bound = OptimisticBoundPlanner(tiny_catalog)
        first = bound.submit(query_over("b0", "b1"))
        second = bound.submit(query_over("b0", "b1", "b2"))
        assert first.admitted and second.admitted
        # The second query reuses the first join, so its marginal cost is a
        # single operator.
        assert second.marginal_cpu < first.marginal_cpu + 1.0
        assert bound.num_admitted == 2

    def test_duplicate_is_free(self, tiny_catalog):
        bound = OptimisticBoundPlanner(tiny_catalog)
        bound.submit(query_over("b0", "b1"))
        duplicate = bound.submit(query_over("b1", "b0"))
        assert duplicate.admitted
        assert duplicate.marginal_cpu == 0.0

    def test_rejects_when_aggregate_cpu_exhausted(self):
        catalog = make_catalog(num_hosts=2, cpu=0.6, num_base=4)  # total 1.2 CPU
        bound = OptimisticBoundPlanner(catalog)
        outcomes = [
            bound.submit(query_over("b0", "b1")),
            bound.submit(query_over("b2", "b3")),
        ]
        assert outcomes[0].admitted
        assert not outcomes[1].admitted

    def test_bound_dominates_sqpr_on_same_workload(self):
        """The aggregate-host relaxation admits at least as many queries as SQPR."""
        names_list = [("b0", "b1"), ("b1", "b2"), ("b0", "b2"), ("b0", "b1", "b2"), ("b2", "b3")]
        catalog_a = make_catalog(num_hosts=2, cpu=2.5, num_base=4)
        planner = SQPRPlanner(catalog_a, config=PlannerConfig(time_limit=5.0))
        for names in names_list:
            planner.submit(query_over(*names))
        catalog_b = make_catalog(num_hosts=2, cpu=2.5, num_base=4)
        bound = OptimisticBoundPlanner(catalog_b)
        for names in names_list:
            bound.submit(query_over(*names))
        assert bound.num_admitted >= planner.num_admitted
