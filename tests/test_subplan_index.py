"""The sub-plan reuse index: identity with the index-free planner.

The whole point of :class:`repro.dsps.subplan.SubPlanIndex` is that it
*never changes planning results* — it only removes the per-admission
linear pass over resident queries.  The tests here run two planners with
identical inputs, one with the index and one without, through random
admit / retire / host-failure / site-partition sequences, and assert
that every admission decision and every allocation fingerprint is
identical after every operation.  The index-free planner (with
``rebuild_minimal_allocation`` on every admission) is the oracle, the
same role the ``*_scan`` recomputations play for the allocation's own
indexes.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.planner import PlannerConfig, SQPRPlanner
from repro.dsps.catalog import SystemCatalog
from repro.dsps.cost_model import LinearCostModel
from repro.dsps.engine import ClusterEngine
from repro.dsps.query import DecompositionMode, QueryWorkloadItem
from repro.dsps.subplan import SubPlanIndex, resolve_reuse_matches
from tests.conftest import make_catalog, query_over

NUM_HOSTS = 4
NUM_BASE = 6
BASES = [f"b{i}" for i in range(NUM_BASE)]


def build_catalog(two_sites: bool = False) -> SystemCatalog:
    catalog = SystemCatalog(
        cost_model=LinearCostModel(seed=1),
        decomposition=DecompositionMode.CANONICAL,
        default_link_capacity=1000.0,
    )
    for i in range(NUM_HOSTS):
        site = (i % 2) if two_sites else 0
        catalog.add_host(
            cpu_capacity=10.0, bandwidth_capacity=200.0, name=f"h{i}", site=site
        )
    for i in range(NUM_BASE):
        catalog.add_base_stream(f"b{i}", 10.0, i % NUM_HOSTS)
    return catalog


def make_planner(catalog: SystemCatalog, reuse_index: bool) -> SQPRPlanner:
    config = PlannerConfig(
        time_limit=1.0, validate_after_apply=True, reuse_index=reuse_index
    )
    return SQPRPlanner(catalog, config=config)


def paired_planners(two_sites: bool = False):
    """Two planners over twin catalogs: index-on and index-off oracle."""
    return (
        make_planner(build_catalog(two_sites), reuse_index=True),
        make_planner(build_catalog(two_sites), reuse_index=False),
    )


def assert_twin_state(p_on: SQPRPlanner, p_off: SQPRPlanner) -> None:
    assert p_on.allocation.fingerprint() == p_off.allocation.fingerprint()
    assert (
        p_on.allocation.admitted_queries == p_off.allocation.admitted_queries
    )
    assert p_on.allocation.validate() == []


# --------------------------------------------------------------------- units
class TestSubPlanIndexUnit:
    def test_fresh_from_construction_and_incremental_thereafter(self):
        planner = make_planner(build_catalog(), reuse_index=True)
        for names in (("b0", "b1"), ("b1", "b2"), ("b0", "b1")):
            outcome = planner.submit(query_over(*names))
            assert outcome.admitted
        stats = planner.subplan_stats
        # Construction syncs once; every admission after that is
        # incremental — no stale fallbacks, no extra full rebuilds.
        assert stats["full_rebuilds"] == 1
        assert stats["stale_fallbacks"] == 0
        assert stats["incremental_collects"] == 2  # third submit is a duplicate
        assert stats["records"] == 2

    def test_duplicate_admission_keeps_index_fresh(self):
        planner = make_planner(build_catalog(), reuse_index=True)
        first = planner.submit(query_over("b0", "b1"))
        dup = planner.submit(query_over("b0", "b1"))
        assert first.admitted and dup.admitted
        assert dup.duplicate
        # The duplicate only touched the admitted set; the index must still
        # be fresh (structural fingerprint is blind to admitted churn).
        assert planner._subplan_index.is_fresh(planner.allocation)

    def test_external_mutation_forces_fallback_then_resync(self):
        p_on, p_off = paired_planners()
        for planner in (p_on, p_off):
            planner.submit(query_over("b0", "b1"))
        # Simulate an external actor leaving garbage in the live allocation
        # (e.g. a harness poking state): the index must detect the changed
        # structural fingerprint, fall back, and still match the oracle.
        for planner in (p_on, p_off):
            planner.allocation.available.add((0, 5))
        assert not p_on._subplan_index.is_fresh(p_on.allocation)
        o_on = p_on.submit(query_over("b1", "b2"))
        o_off = p_off.submit(query_over("b1", "b2"))
        assert o_on.admitted == o_off.admitted
        assert_twin_state(p_on, p_off)
        assert p_on.subplan_stats["stale_fallbacks"] == 1
        # Resynced: the next admission is incremental again.
        p_on.submit(query_over("b2", "b3"))
        assert p_on.subplan_stats["stale_fallbacks"] == 1

    def test_retire_matches_oracle_and_shares_duplicate_subplans(self):
        p_on, p_off = paired_planners()
        ids = []
        for names in (("b0", "b1"), ("b0", "b1"), ("b2", "b3")):
            o_on = p_on.submit(query_over(*names))
            p_off.submit(query_over(*names))
            ids.append(o_on.query.query_id)
        # Retiring one of two duplicates must keep the shared sub-plan.
        assert p_on.retire(ids[0]) is True
        assert p_off.retire(ids[0]) is True
        assert_twin_state(p_on, p_off)
        assert p_on.allocation.is_provided(
            p_on.catalog.get_query(ids[1]).result_stream
        )
        # Retiring the survivor drops it.
        assert p_on.retire(ids[1]) is True
        assert p_off.retire(ids[1]) is True
        assert_twin_state(p_on, p_off)
        # Unknown / not-admitted ids are refused identically.
        assert p_on.retire(ids[1]) is False
        assert p_off.retire(ids[1]) is False
        assert p_on.retire(10_000) is False
        assert p_off.retire(10_000) is False

    def test_reset_resyncs_on_empty_allocation(self):
        planner = make_planner(build_catalog(), reuse_index=True)
        planner.submit(query_over("b0", "b1"))
        planner.reset()
        assert len(planner._subplan_index) == 0
        assert planner._subplan_index.is_fresh(planner.allocation)
        outcome = planner.submit(query_over("b1", "b2"))
        assert outcome.admitted
        assert planner.subplan_stats["stale_fallbacks"] == 0

    def test_rebuild_reuses_records_with_matching_slices(self):
        planner = make_planner(build_catalog(), reuse_index=True)
        for names in (("b0", "b1"), ("b2", "b3")):
            planner.submit(query_over(*names))
        index = planner._subplan_index
        before = dict(index.stats)
        # The allocation is already minimal, so a second rebuild must keep
        # every record via its stream-fingerprint slices.
        index.rebuild(planner.allocation)
        assert index.stats["records_reused"] == before["records_reused"] + 2
        assert (
            index.stats["records_reextracted"] == before["records_reextracted"]
        )

    def test_index_off_planner_reports_no_stats(self):
        planner = make_planner(build_catalog(), reuse_index=False)
        planner.submit(query_over("b0", "b1"))
        assert planner.subplan_stats == {}
        assert planner._subplan_index is None

    def test_records_are_replay_sequences(self):
        planner = make_planner(build_catalog(), reuse_index=True)
        outcome = planner.submit(query_over("b0", "b1"))
        index = planner._subplan_index
        record = index.records[outcome.query.result_stream]
        assert record.provider == planner.allocation.provider_of(
            outcome.query.result_stream
        )
        assert record.num_structures == len(record.ops)
        # Every structure in the replay sequence is live.
        for kind, key in record.ops:
            if kind == 0:
                assert key in planner.allocation.available
            elif kind == 1:
                assert key in planner.allocation.placements
            else:
                assert key in planner.allocation.flows


class TestReuseMatches:
    def test_exact_partial_and_fresh_classification(self):
        planner = make_planner(build_catalog(), reuse_index=True)
        resident = planner.submit(query_over("b0", "b1")).query
        duplicate = planner.catalog.register_query(query_over("b0", "b1"))
        overlapping = planner.catalog.register_query(query_over("b1", "b2"))
        fresh = planner.catalog.register_query(query_over("b4", "b5"))
        matches = {
            m.query_id: m
            for m in resolve_reuse_matches(
                planner.allocation, [duplicate, overlapping, fresh]
            )
        }
        assert matches[duplicate.query_id].exact
        assert not matches[duplicate.query_id].partial
        assert not matches[overlapping.query_id].exact
        assert matches[overlapping.query_id].partial
        assert matches[overlapping.query_id].overlapping_queries == 1
        assert not matches[fresh.query_id].exact
        assert not matches[fresh.query_id].partial
        assert matches[fresh.query_id].shared_streams == 0
        assert resident.query_id not in matches

    def test_submit_batch_attaches_reuse_extras(self):
        planner = make_planner(build_catalog(), reuse_index=True)
        planner.submit(query_over("b0", "b1"))
        outcomes = planner.submit_batch(
            [query_over("b0", "b1"), query_over("b1", "b2"), query_over("b4", "b5")]
        )
        assert outcomes[0].duplicate and outcomes[0].reuse_exact
        assert not outcomes[1].reuse_exact and outcomes[1].reuse_partial
        assert not outcomes[2].reuse_exact and not outcomes[2].reuse_partial


# ---------------------------------------------------------------- properties
OPS = ["submit", "submit", "submit", "retire", "fail_host", "partition"]

property_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def op_sequences(draw):
    length = draw(st.integers(min_value=4, max_value=14))
    ops = []
    for _ in range(length):
        kind = draw(st.sampled_from(OPS))
        if kind == "submit":
            k = draw(st.integers(min_value=2, max_value=3))
            ops.append(
                (
                    "submit",
                    tuple(
                        sorted(
                            draw(
                                st.permutations(BASES).map(
                                    lambda p, k=k: tuple(p[:k])
                                )
                            )
                        )
                    ),
                )
            )
        elif kind == "retire":
            ops.append(("retire", draw(st.integers(min_value=0, max_value=30))))
        else:
            ops.append((kind, None))
    return ops


class TestIndexMatchesOracle:
    """Index-on == index-off across random lifecycle sequences."""

    @given(ops=op_sequences())
    @property_settings
    def test_random_sequences_agree_with_index_free_oracle(self, ops):
        p_on, p_off = paired_planners(two_sites=True)
        engines = (
            ClusterEngine(p_on.catalog, strict=False),
            ClusterEngine(p_off.catalog, strict=False),
        )
        failed = False
        partitioned = False
        admitted: list = []
        for kind, payload in ops:
            if kind == "submit":
                o_on = p_on.submit(query_over(*payload))
                o_off = p_off.submit(query_over(*payload))
                assert (o_on.admitted, o_on.duplicate) == (
                    o_off.admitted,
                    o_off.duplicate,
                )
                if o_on.admitted:
                    admitted.append(o_on.query.query_id)
            elif kind == "retire":
                if not admitted:
                    continue
                query_id = admitted[payload % len(admitted)]
                r_on = p_on.retire(query_id)
                r_off = p_off.retire(query_id)
                assert r_on == r_off
                if r_on:
                    admitted.remove(query_id)
            elif kind == "fail_host" and not failed:
                # Mirror the harness: engines adopt the planner allocation,
                # fail the host, planners adopt the survivors back and get
                # their topology-change notification.
                failed = True
                victims = None
                for planner, engine in zip((p_on, p_off), engines):
                    engine.adopt(planner.allocation, trusted=True)
                    report = engine.fail_host(0)
                    assert report.violations == []
                    planner.allocation = engine.allocation
                    planner.on_topology_change()
                    if victims is None:
                        victims = report.victims
                    else:
                        assert report.victims == victims
                admitted = [q for q in admitted if q not in victims]
            elif kind == "partition" and not partitioned:
                partitioned = True
                victims = None
                for planner, engine in zip((p_on, p_off), engines):
                    engine.adopt(planner.allocation, trusted=True)
                    report = engine.partition_site(1)
                    assert report.violations == []
                    engine.heal_site(1)
                    planner.allocation = engine.allocation
                    planner.on_topology_change()
                    if victims is None:
                        victims = report.victims
                    else:
                        assert report.victims == victims
                admitted = [q for q in admitted if q not in victims]
            assert_twin_state(p_on, p_off)

    def test_long_random_walk_stays_identical(self):
        rng = random.Random(1234)
        p_on, p_off = paired_planners()
        admitted: list = []
        for _ in range(80):
            if rng.random() < 0.65 or not admitted:
                names = tuple(sorted(rng.sample(BASES, rng.choice([2, 2, 3]))))
                o_on = p_on.submit(query_over(*names))
                o_off = p_off.submit(query_over(*names))
                assert (o_on.admitted, o_on.duplicate) == (
                    o_off.admitted,
                    o_off.duplicate,
                )
                if o_on.admitted:
                    admitted.append(o_on.query.query_id)
            else:
                query_id = rng.choice(admitted)
                assert p_on.retire(query_id) == p_off.retire(query_id)
                admitted.remove(query_id)
            assert_twin_state(p_on, p_off)
        stats = p_on.subplan_stats
        assert stats["stale_fallbacks"] == 0
        assert stats["incremental_collects"] > 0
        assert stats["incremental_retires"] > 0
