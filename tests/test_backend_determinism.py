"""Cross-backend determinism of the planning fabric (satellite of the
multiprocess-planning PR).

The execution backend must never change observable output: serial,
thread and process planning of the same workload yield identical
admission decisions and identical allocation fingerprints — including
after catalog churn, parent-side single submits (which leave worker
replicas stale), retires, topology changes and a forced mid-run
full-state resync.

The worker protocol itself (:mod:`repro.core.federated_worker`) is also
exercised *in process* — wire-format round trips and the ``_op_plan`` /
``_op_resync`` handlers driven directly against a replica planner — so
the child-side code paths are covered without depending on forked
subprocess coverage collection.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import PlannerConfig, create_planner
from repro.core.federated import FederatedPlanner
from repro.core.federated_worker import (
    apply_allocation_ops,
    diff_allocation_ops,
    dump_allocation,
    load_allocation,
    make_shard_worker,
    sanitize_outcomes,
    snapshot_allocation,
)
from repro.dsps.allocation import Allocation
from repro.exceptions import PlanningError
from repro.experiments.federated import federated_scenario, site_local_workload
from repro.utils.pool import process_backend_available

needs_fork = pytest.mark.skipif(
    not process_backend_available(),
    reason="process backend needs the 'fork' start method",
)

ALL_BACKENDS = ("serial", "thread", "process")


def make_setup(num_sites=3, queries_per_site=3, seed=7):
    scenario = federated_scenario(num_sites, seed=seed)
    catalog = scenario.build_catalog()
    workload = site_local_workload(scenario, queries_per_site=queries_per_site)
    return scenario, catalog, workload


def run_trace(backend, *, num_sites=3, queries_per_site=3, seed=7, workers=2):
    """One churny planning run; returns (decision trace, final fingerprint)."""
    _, catalog, workload = make_setup(num_sites, queries_per_site, seed)
    planner = create_planner(
        "federated:sqpr", catalog, workers=workers, backend=backend
    )
    trace = []
    split = max(1, len(workload) // 2)
    batch1 = planner.submit_batch(workload[:split])
    trace.append(tuple((o.query.query_id, o.admitted) for o in batch1))
    admitted = [o.query.query_id for o in batch1 if o.admitted]
    if admitted:
        planner.retire(admitted[0])
    host = sorted(catalog.hosts.ids)[0]
    catalog.hosts.deactivate(host)
    trace.append(tuple(sorted(planner.on_topology_change())))
    batch2 = planner.submit_batch(workload[split:])
    trace.append(tuple((o.query.query_id, o.admitted) for o in batch2))
    fingerprint = planner.allocation.fingerprint()
    planner.close()
    return tuple(trace), fingerprint


class TestBackendParity:
    @needs_fork
    def test_all_backends_identical_through_churn(self):
        reference = run_trace("serial")
        for backend in ("thread", "process"):
            assert run_trace(backend) == reference, backend

    def test_serial_thread_identical(self):
        assert run_trace("thread") == run_trace("serial")

    @needs_fork
    @pytest.mark.parametrize("workers", [1, 3])
    def test_process_worker_count_is_invisible(self, workers):
        assert run_trace("process", workers=workers) == run_trace("serial")

    @needs_fork
    def test_single_submit_then_batch_stays_in_sync(self):
        # A parent-side single submit leaves the worker replica behind;
        # the next batch must ship the allocation proactively (stale-site
        # dump), not diverge.
        def run(backend):
            _, catalog, workload = make_setup()
            planner = create_planner(
                "federated:sqpr", catalog, workers=2, backend=backend
            )
            planner.submit_batch(workload[:4])
            single = planner.submit(workload[4])
            batch = planner.submit_batch(workload[5:])
            trace = (
                (single.query.query_id, single.admitted),
                tuple((o.query.query_id, o.admitted) for o in batch),
                planner.allocation.fingerprint(),
            )
            resyncs = sum(
                w["resyncs"] for w in planner.worker_stats()["workers"]
            )
            planner.close()
            return trace, resyncs

        reference, _ = run("serial")
        process_trace, resyncs = run("process")
        assert process_trace == reference
        assert resyncs == 0  # proactive dump, no mismatch round trip

    @needs_fork
    def test_forced_resync_recovers_and_matches(self):
        # Sabotage the stale-site bookkeeping so the worker sees a
        # fingerprint mismatch: the fallback must resync and the final
        # results still match the serial reference.
        _, catalog, workload = make_setup()
        planner = create_planner(
            "federated:sqpr", catalog, workers=2, backend="process"
        )
        planner.submit_batch(workload[:4])
        planner.submit(workload[4])
        assert planner._stale_sites  # the single submit marked its site
        planner._stale_sites.clear()  # ...which we now forget on purpose
        batch = planner.submit_batch(workload[5:])
        resyncs = sum(w["resyncs"] for w in planner.worker_stats()["workers"])
        assert resyncs >= 1
        fingerprint = planner.allocation.fingerprint()
        decisions = tuple((o.query.query_id, o.admitted) for o in batch)
        planner.close()

        _, catalog2, workload2 = make_setup()
        serial = create_planner("federated:sqpr", catalog2, backend="serial")
        serial.submit_batch(workload2[:4])
        serial.submit(workload2[4])
        expected = serial.submit_batch(workload2[5:])
        assert decisions == tuple(
            (o.query.query_id, o.admitted) for o in expected
        )
        assert fingerprint == serial.allocation.fingerprint()

    @needs_fork
    def test_structure_change_triggers_resync_and_matches(self):
        # Growing the topology after the fork changes the structural
        # signature: the worker must refuse the delta path, take the
        # full-catalog resync, and still match serial.
        def run(backend):
            _, catalog, workload = make_setup(num_sites=2)
            planner = create_planner(
                "federated:sqpr", catalog, workers=2, backend=backend
            )
            planner.submit_batch(workload[:3])
            catalog.add_host(6.0, 300.0, name="late", site=0)
            planner.on_topology_change()
            batch = planner.submit_batch(workload[3:])
            trace = (
                tuple((o.query.query_id, o.admitted) for o in batch),
                planner.allocation.fingerprint(),
            )
            planner.close()
            return trace

        assert run("process") == run("serial")

    @needs_fork
    def test_reset_tears_pool_down(self):
        _, catalog, workload = make_setup(num_sites=2)
        planner = create_planner(
            "federated:sqpr", catalog, workers=2, backend="process"
        )
        planner.submit_batch(workload[:3])
        assert planner._pool is not None
        planner.reset()
        assert planner._pool is None
        # And the next batch lazily re-forks a fresh pool.
        planner.submit_batch(workload[:3])
        assert planner._pool is not None
        planner.close()

    def test_unknown_backend_rejected(self):
        _, catalog, _ = make_setup(num_sites=2)
        with pytest.raises(PlanningError, match="unknown execution backend"):
            FederatedPlanner(catalog, backend="quantum")

    def test_config_exec_backend_is_the_default(self):
        _, catalog, _ = make_setup(num_sites=2)
        planner = FederatedPlanner(
            catalog, config=PlannerConfig(exec_backend="serial")
        )
        assert planner.backend == "serial"

    @needs_fork
    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=1, max_value=50))
    def test_property_process_matches_serial(self, seed):
        assert run_trace(
            "process", num_sites=2, queries_per_site=2, seed=seed
        ) == run_trace("serial", num_sites=2, queries_per_site=2, seed=seed)


@needs_fork
class TestMatrixBackendParity:
    def test_quick_sweep_identical_across_backends(self):
        from repro.experiments.matrix import run_matrix

        kwargs = dict(
            scenarios=["baseline", "site_partition"],
            planners=["heuristic", "sqpr"],
            scales=["quick"],
            workers=2,
        )
        thread = run_matrix(backend="thread", **kwargs)
        process = run_matrix(backend="process", **kwargs)
        assert process.fingerprints() == thread.fingerprints()
        assert process.golden_payload() == thread.golden_payload()


# ------------------------------------------------------------ wire protocol
class TestWireFormat:
    def _planned_allocation(self):
        _, catalog, workload = make_setup(num_sites=2)
        planner = create_planner("federated:sqpr", catalog, backend="serial")
        planner.submit_batch(workload)
        return catalog, planner.allocation

    def test_dump_load_round_trip(self):
        catalog, alloc = self._planned_allocation()
        rebuilt = load_allocation(catalog, dump_allocation(alloc))
        assert rebuilt.fingerprint() == alloc.fingerprint()
        assert set(rebuilt.flows) == set(alloc.flows)
        assert dict(rebuilt.provided) == dict(alloc.provided)

    def test_dump_is_plain_picklable_data(self):
        import pickle

        _, alloc = self._planned_allocation()
        dump = dump_allocation(alloc)
        assert pickle.loads(pickle.dumps(dump)) == dump

    def test_diff_apply_round_trip(self):
        catalog, alloc = self._planned_allocation()
        before = snapshot_allocation(alloc)
        # Mutate: drop one admitted query (removes placements, flows and
        # availability entries in one shot).
        victim = sorted(alloc.admitted_queries)[0]
        mutated = alloc.without_queries([victim])
        ops = diff_allocation_ops(before, mutated)
        replay = load_allocation(catalog, dump_allocation(alloc))
        apply_allocation_ops(replay, ops)
        assert replay.fingerprint() == mutated.fingerprint()

    def test_empty_diff_is_compact(self):
        _, alloc = self._planned_allocation()
        ops = diff_allocation_ops(snapshot_allocation(alloc), alloc)
        assert all(not v for v in ops.values())

    def test_sanitize_strips_solve_results(self):
        _, catalog, workload = make_setup(num_sites=2)
        planner = create_planner("federated:sqpr", catalog, backend="serial")
        outcomes = planner.submit_batch(workload[:3])
        sanitize_outcomes(outcomes)
        assert all(
            o.extras.get("solve_result") is None for o in outcomes
        )


class TestShardWorkerInProcess:
    """Drive the child-side handlers directly (no fork) for coverage."""

    def _twin_planners(self, seed=7):
        # Two independently built but identical worlds: the "parent" and
        # the worker's fork-inherited replica.
        scenario = federated_scenario(2, seed=seed)
        parent_catalog = scenario.build_catalog()
        replica_catalog = federated_scenario(2, seed=seed).build_catalog()
        parent = FederatedPlanner(parent_catalog, backend="serial")
        replica = FederatedPlanner(replica_catalog, backend="serial")
        workload = site_local_workload(scenario, queries_per_site=3)
        return parent, replica, workload

    def _worker_for(self, replica):
        return make_shard_worker(
            {
                "catalog": replica.catalog,
                "views": replica._views,
                "shards": replica._shards,
                "inner_cls": replica._inner_cls,
                "inner_name": replica.inner_name,
                "config": replica.config,
                "cursor": replica.catalog.num_registrations,
            }
        )

    def _plan_body(self, parent, groups, **overrides):
        body = {
            "registrations": parent.catalog.registration_log,
            "sync": parent.catalog.sync_state(),
            "struct_sig": parent.catalog.structure_signature(),
            "events": [],
            "foreign": {},
            "groups": groups,
            "time_limit": None,
        }
        body.update(overrides)
        return body

    def test_op_plan_matches_parent_side_solve(self):
        parent, replica, workload = self._twin_planners()
        worker = self._worker_for(replica)
        queries = [parent._resolve_query(item) for item in workload]
        site0 = [q for q in queries if parent.route(q) == 0]
        expect_fp = replica._shards[0].allocation.fingerprint()
        response = worker(
            "plan",
            self._plan_body(
                parent,
                [
                    {
                        "site": 0,
                        "query_ids": [q.query_id for q in site0],
                        "expect_fp": expect_fp,
                        "alloc": None,
                    }
                ],
            ),
        )
        assert response["status"] == "ok"
        (entry,) = response["groups"]
        # The parent plans the same group on its own shard: decisions
        # and post-solve fingerprints must be bit-identical.
        parent_outcomes = parent._shards[0].submit_batch(
            [parent.catalog.get_query(q.query_id) for q in site0]
        )
        assert [o.admitted for o in entry["outcomes"]] == [
            o.admitted for o in parent_outcomes
        ]
        assert (
            entry["post_fp"] == parent._shards[0].allocation.fingerprint()
        )
        # And replaying the ops on a fresh copy reproduces that state.
        fresh = Allocation(parent.catalog)
        apply_allocation_ops(fresh, entry["ops"])
        assert fresh.fingerprint() == entry["post_fp"]

    def test_op_plan_refuses_structure_drift(self):
        parent, replica, workload = self._twin_planners()
        worker = self._worker_for(replica)
        parent.catalog.add_host(6.0, 300.0, name="late", site=0)
        response = worker("plan", self._plan_body(parent, []))
        assert response == {"status": "resync", "reason": "structure"}

    def test_op_plan_refuses_fingerprint_drift(self):
        parent, replica, workload = self._twin_planners()
        worker = self._worker_for(replica)
        [parent._resolve_query(item) for item in workload]
        response = worker(
            "plan",
            self._plan_body(
                parent,
                [
                    {
                        "site": 0,
                        "query_ids": [],
                        "expect_fp": 12345,  # never the real fingerprint
                        "alloc": None,
                    }
                ],
            ),
        )
        assert response == {"status": "resync", "reason": "fingerprint"}

    def test_op_resync_adopts_full_state_then_plans(self):
        parent, replica, workload = self._twin_planners()
        worker = self._worker_for(replica)
        queries = [parent._resolve_query(item) for item in workload]
        site0 = [q for q in queries if parent.route(q) == 0]
        # Parent plans first; the replica is now behind.
        parent._shards[0].submit_batch(
            [parent.catalog.get_query(q.query_id) for q in site0[:1]]
        )
        response = worker(
            "resync",
            {
                "catalog": parent.catalog,
                "cursor": parent.catalog.num_registrations,
                "sites": {
                    site: dump_allocation(parent._shards[site].allocation)
                    for site in parent._shards
                },
                "foreign": {site: None for site in parent._shards},
            },
        )
        assert response == {"status": "ok"}
        # After adoption the worker plans the rest identically.
        rest = site0[1:]
        expect_fp = parent._shards[0].allocation.fingerprint()
        response = worker(
            "plan",
            self._plan_body(
                parent,
                [
                    {
                        "site": 0,
                        "query_ids": [q.query_id for q in rest],
                        "expect_fp": expect_fp,
                        "alloc": None,
                    }
                ],
                registrations=[],
            ),
        )
        assert response["status"] == "ok"
        parent_outcomes = parent._shards[0].submit_batch(
            [parent.catalog.get_query(q.query_id) for q in rest]
        )
        (entry,) = response["groups"]
        assert (
            entry["post_fp"] == parent._shards[0].allocation.fingerprint()
        )
        assert [o.admitted for o in entry["outcomes"]] == [
            o.admitted for o in parent_outcomes
        ]

    def test_events_replay_retire_and_drop(self):
        parent, replica, workload = self._twin_planners()
        worker = self._worker_for(replica)
        queries = [parent._resolve_query(item) for item in workload]
        site0 = [q for q in queries if parent.route(q) == 0]
        group = {
            "site": 0,
            "query_ids": [q.query_id for q in site0],
            "expect_fp": replica._shards[0].allocation.fingerprint(),
            "alloc": None,
        }
        response = worker("plan", self._plan_body(parent, [group]))
        admitted = [
            o.query.query_id
            for o in response["groups"][0]["outcomes"]
            if o.admitted
        ]
        assert len(admitted) >= 2
        # Mirror parent-side retire + drop on its own shard.
        parent._shards[0].submit_batch(
            [parent.catalog.get_query(q.query_id) for q in site0]
        )
        parent._shards[0].retire(admitted[0])
        parent_alloc = parent._shards[0].allocation.without_queries(
            [admitted[1]]
        )
        parent._shards[0].allocation = parent_alloc
        response = worker(
            "plan",
            self._plan_body(
                parent,
                [
                    {
                        "site": 0,
                        "query_ids": [],
                        "expect_fp": parent_alloc.fingerprint(),
                        "alloc": None,
                    }
                ],
                registrations=[],
                events=[
                    ("retire", 0, admitted[0]),
                    ("drop", 0, [admitted[1]]),
                ],
            ),
        )
        assert response["status"] == "ok"

    def test_op_stats_reports_reuse_and_cursor(self):
        parent, replica, workload = self._twin_planners()
        worker = self._worker_for(replica)
        stats = worker("stats", None)
        assert set(stats["reuse"]) == {
            "hits",
            "misses",
            "basis_hits",
            "basis_misses",
        }
        assert stats["cursor"] == 0

    def test_unknown_event_kind_rejected(self):
        parent, replica, _ = self._twin_planners()
        worker = self._worker_for(replica)
        with pytest.raises(ValueError, match="unknown shard event"):
            worker(
                "plan",
                self._plan_body(parent, [], events=[("explode", 0, None)]),
            )


class TestCatalogSyncHelpers:
    def test_registration_log_replays_identically(self):
        scenario = federated_scenario(2, seed=9)
        catalog_a = scenario.build_catalog()
        catalog_b = federated_scenario(2, seed=9).build_catalog()
        workload = site_local_workload(scenario, queries_per_site=2)
        queries = [catalog_a.register_query(item) for item in workload]
        assert catalog_a.num_registrations == len(workload)
        catalog_b.replay_registrations(catalog_a.registration_log)
        for query in queries:
            twin = catalog_b.get_query(query.query_id)
            assert twin.base_streams == query.base_streams
            assert twin.result_stream == query.result_stream
            assert twin.candidate_operators == query.candidate_operators

    def test_sync_state_round_trip(self):
        scenario = federated_scenario(2, seed=9)
        catalog_a = scenario.build_catalog()
        catalog_b = federated_scenario(2, seed=9).build_catalog()
        host = sorted(catalog_a.hosts.ids)[0]
        catalog_a.hosts.deactivate(host)
        catalog_a.partition_site(1)
        catalog_a.set_wan_drift(0.5)
        catalog_b.apply_sync_state(catalog_a.sync_state())
        assert catalog_b.sync_state() == catalog_a.sync_state()
        # Healing converges too.
        catalog_a.hosts.activate(host)
        catalog_a.heal_site(1)
        catalog_b.apply_sync_state(catalog_a.sync_state())
        assert catalog_b.sync_state() == catalog_a.sync_state()

    def test_structure_signature_tracks_growth(self):
        scenario = federated_scenario(2, seed=9)
        catalog = scenario.build_catalog()
        twin = federated_scenario(2, seed=9).build_catalog()
        assert catalog.structure_signature() == twin.structure_signature()
        catalog.add_host(6.0, 300.0, name="late", site=0)
        assert catalog.structure_signature() != twin.structure_signature()

    def test_structure_signature_ignores_dynamic_state(self):
        scenario = federated_scenario(2, seed=9)
        catalog = scenario.build_catalog()
        before = catalog.structure_signature()
        catalog.hosts.deactivate(sorted(catalog.hosts.ids)[0])
        catalog.set_wan_drift(0.25)
        assert catalog.structure_signature() == before
