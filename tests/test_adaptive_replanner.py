"""End-to-end tests for adaptive re-planning (§IV-B).

The replanner was previously only exercised indirectly (through the
example script and the sim harness); these tests pin down its whole
contract: victim selection from drift and overload, garbage collection of
the victims' structures, re-admission through the normal planning path,
``fully_recovered`` on forced drops, hook delivery, and genericity over
allocation-keeping planners.
"""

from __future__ import annotations

import pytest

from repro.api import PlannerConfig, create_planner
from repro.core.adaptive import AdaptiveReplanner, ReplanReport, garbage_collect
from repro.core.planner import SQPRPlanner
from repro.dsps.plan import extract_plan
from repro.dsps.resource_monitor import ResourceMonitor
from repro.exceptions import PlanningError
from tests.conftest import make_catalog, query_over


def build_system(num_hosts: int = 3, cpu: float = 10.0):
    catalog = make_catalog(num_hosts=num_hosts, cpu=cpu, num_base=6)
    planner = SQPRPlanner(
        catalog, config=PlannerConfig(time_limit=1.0, validate_after_apply=True)
    )
    monitor = ResourceMonitor(catalog)
    return catalog, planner, monitor


class TestVictimSelection:
    def test_no_victims_without_drift(self):
        _catalog, planner, monitor = build_system()
        planner.submit(query_over("b0", "b1"))
        replanner = AdaptiveReplanner(planner, monitor, drift_threshold=0.1)
        assert replanner.queries_needing_replan() == []
        assert replanner.maybe_replan() is None

    def test_drifted_operator_selects_its_queries(self):
        _catalog, planner, monitor = build_system()
        q1 = planner.submit(query_over("b0", "b1"))
        q2 = planner.submit(query_over("b2", "b3"))
        assert q1.admitted and q2.admitted
        # Drift an operator that only q1's plan uses.
        plan = extract_plan(
            planner.catalog, planner.allocation, q1.query.result_stream
        )
        operator_id = next(iter(plan.operators_used()))
        monitor.set_operator_drift(operator_id, 1.5)

        replanner = AdaptiveReplanner(planner, monitor, drift_threshold=0.25)
        victims = replanner.queries_needing_replan()
        assert q1.query.query_id in victims
        assert q2.query.query_id not in victims

    def test_overloaded_host_selects_resident_queries(self):
        _catalog, planner, monitor = build_system()
        q1 = planner.submit(query_over("b0", "b1"))
        assert q1.admitted
        plan = extract_plan(
            planner.catalog, planner.allocation, q1.query.result_stream
        )
        operator_id = next(iter(plan.operators_used()))
        # Huge drift overloads the host without counting as "drift" at the
        # threshold used (victims must come from the overload path).
        monitor.set_operator_drift(operator_id, 100.0)
        replanner = AdaptiveReplanner(planner, monitor, drift_threshold=1000.0)
        assert q1.query.query_id in replanner.queries_needing_replan()


class TestReplanRound:
    def test_full_recovery_and_garbage_collection(self):
        _catalog, planner, monitor = build_system()
        outcomes = [
            planner.submit(query_over("b0", "b1")),
            planner.submit(query_over("b2", "b3")),
        ]
        assert all(o.admitted for o in outcomes)
        victims = [outcomes[0].query.query_id]

        reports = []
        planner.on_replan(reports.append)
        replanner = AdaptiveReplanner(planner, monitor)
        report = replanner.replan(victims)

        assert report.victims == victims
        assert report.readmitted == victims
        assert report.dropped == []
        assert report.fully_recovered
        # The hook observed the same report.
        assert reports == [report]
        # Both queries are admitted again and the allocation is clean and
        # minimal (garbage collection left nothing dangling).
        assert planner.allocation.admitted_queries == {
            o.query.query_id for o in outcomes
        }
        assert planner.allocation.validate() == []
        rebuilt = garbage_collect(planner.catalog, planner.allocation)
        assert rebuilt.placements == planner.allocation.placements
        assert rebuilt.flows == planner.allocation.flows

    def test_forced_drop_sets_fully_recovered_false(self):
        # Two hosts; queries fill both.  Host 1 then dies *behind the
        # replanner's back* (catalog-level), so its queries become victims
        # whose re-admission must fail on the single crowded survivor.
        catalog = make_catalog(num_hosts=2, cpu=1.2, num_base=4)
        planner = SQPRPlanner(catalog, config=PlannerConfig(time_limit=1.0))
        monitor = ResourceMonitor(catalog)
        admitted = []
        for names in [("b0", "b1"), ("b2", "b3"), ("b1", "b2"), ("b0", "b3")]:
            outcome = planner.submit(query_over(*names))
            if outcome.admitted:
                admitted.append(outcome.query.query_id)
        assert len(admitted) >= 2
        used_hosts = {h for (h, _o) in planner.allocation.placements}
        assert len(used_hosts) == 2, "need load on both hosts to force drops"

        catalog.deactivate_host(1)
        replanner = AdaptiveReplanner(planner, monitor)
        victims = replanner.queries_needing_replan()
        assert victims, "queries stranded on the dead host must be victims"
        report = replanner.replan(victims)
        assert not report.fully_recovered
        assert report.dropped, "no capacity left: someone must be dropped"
        assert set(report.readmitted) | set(report.dropped) == set(victims)
        # Nothing references the dead host afterwards.
        assert all(h != 1 for (h, _o) in planner.allocation.placements)
        assert planner.allocation.validate() == []

    def test_replan_unknown_victims_is_noop(self):
        _catalog, planner, monitor = build_system()
        outcome = planner.submit(query_over("b0", "b1"))
        replanner = AdaptiveReplanner(planner, monitor)
        report = replanner.replan([999])
        assert report.victims == []
        assert report.fully_recovered
        assert outcome.query.query_id in planner.allocation.admitted_queries

    def test_maybe_replan_runs_only_with_enough_victims(self):
        _catalog, planner, monitor = build_system()
        q1 = planner.submit(query_over("b0", "b1"))
        plan = extract_plan(
            planner.catalog, planner.allocation, q1.query.result_stream
        )
        monitor.set_operator_drift(next(iter(plan.operators_used())), 2.0)
        replanner = AdaptiveReplanner(planner, monitor, drift_threshold=0.25)
        assert replanner.maybe_replan(min_victims=5) is None
        report = replanner.maybe_replan()
        assert isinstance(report, ReplanReport)
        assert report.victims


class TestGenericity:
    def test_heuristic_planner_can_be_replanned(self):
        catalog = make_catalog(num_hosts=3, cpu=10.0, num_base=6)
        planner = create_planner("heuristic", catalog)
        monitor = ResourceMonitor(catalog)
        outcome = planner.submit(query_over("b0", "b1"))
        assert outcome.admitted
        replanner = AdaptiveReplanner(planner, monitor)
        report = replanner.replan([outcome.query.query_id])
        assert report.fully_recovered
        assert planner.allocation.validate() == []

    def test_planner_without_allocation_is_rejected(self):
        catalog = make_catalog()
        bound = create_planner("optimistic", catalog)
        monitor = ResourceMonitor(catalog)
        with pytest.raises(PlanningError):
            AdaptiveReplanner(bound, monitor)
