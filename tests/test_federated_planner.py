"""Unit tests of the federated planning stack: the site catalog views, the
query router, shard/coordinator ownership, resource soundness across the
shard boundary, and the ``federated:<inner>`` registry integration."""

from __future__ import annotations

import pytest

from repro.api import PlannerConfig, available_planners, create_planner
from repro.core.federated import FederatedPlanner
from repro.dsps.allocation import Allocation
from repro.dsps.catalog import SiteCatalogView, SystemCatalog
from repro.dsps.cost_model import LinearCostModel
from repro.dsps.query import DecompositionMode, QueryWorkloadItem
from repro.exceptions import CatalogError, PlanningError
from tests.conftest import query_over


def make_federated_catalog(
    num_sites: int = 2,
    hosts_per_site: int = 3,
    cpu: float = 8.0,
    bandwidth: float = 400.0,
    wan_capacity: float = 100.0,
    streams_per_host: int = 2,
    rate: float = 10.0,
) -> SystemCatalog:
    catalog = SystemCatalog(
        cost_model=LinearCostModel(seed=1),
        decomposition=DecompositionMode.CANONICAL,
        default_link_capacity=1000.0,
        default_wan_capacity=wan_capacity,
    )
    num_hosts = num_sites * hosts_per_site
    for i in range(num_hosts):
        catalog.add_host(cpu, bandwidth, name=f"h{i}", site=i // hosts_per_site)
    for i in range(streams_per_host * num_hosts):
        catalog.add_base_stream(f"b{i}", rate, i % num_hosts)
    return catalog


def stream_names_of_site(catalog: SystemCatalog, site: int):
    names = []
    for stream in catalog.streams.base_streams:
        hosts = catalog.base_hosts_of(stream.stream_id)
        if hosts and all(catalog.site_of_host(h) == site for h in hosts):
            names.append(stream.name)
    return names


class TestSiteCatalogView:
    def test_filters_hosts_and_base_streams(self):
        catalog = make_federated_catalog()
        view = SiteCatalogView(catalog, 1)
        assert view.host_ids == [3, 4, 5]
        assert view.hosts.ids == [3, 4, 5]
        assert view.num_hosts == catalog.num_hosts  # global id space
        for stream in catalog.streams.base_streams:
            expected = frozenset(
                h
                for h in catalog.base_hosts_of(stream.stream_id)
                if catalog.site_of_host(h) == 1
            )
            assert view.base_hosts_of(stream.stream_id) == expected

    def test_delegates_everything_else(self):
        catalog = make_federated_catalog()
        view = SiteCatalogView(catalog, 0)
        assert view.cost_model is catalog.cost_model
        assert view.streams is catalog.streams
        assert view.num_sites == 2
        query = view.register_query(query_over("b0", "b1"))
        assert catalog.get_query(query.query_id) is query

    def test_rejects_unknown_site(self):
        catalog = make_federated_catalog()
        with pytest.raises(CatalogError):
            SiteCatalogView(catalog, 9)

    def test_host_liveness_follows_base(self):
        catalog = make_federated_catalog()
        view = SiteCatalogView(catalog, 0)
        catalog.deactivate_host(1)
        assert view.host_ids == [0, 2]
        assert view.hosts.offline_ids == [1]
        catalog.activate_host(1)
        assert view.host_ids == [0, 1, 2]

    def test_foreign_allocation_reduces_capacities(self):
        catalog = make_federated_catalog()
        view = SiteCatalogView(catalog, 0)
        assert view.hosts.get(0).cpu_capacity == 8.0

        query = catalog.register_query(query_over("b0", "b1"))
        operator_id = next(iter(query.candidate_operators))
        cost = catalog.get_operator(operator_id).cpu_cost
        foreign = Allocation(catalog)
        foreign.available.add((0, 0))
        foreign.available.add((0, 1))
        foreign.placements.add((0, operator_id))
        foreign.flows.add((1, 0, 1))
        view.set_foreign_allocation(foreign)

        assert view.hosts.get(0).cpu_capacity == pytest.approx(8.0 - cost)
        rate = catalog.stream_rate(1)
        assert view.hosts.get(0).bandwidth_capacity == pytest.approx(400.0 - rate)
        assert view.link_capacity(1, 0) == pytest.approx(1000.0 - rate)
        # Untouched hosts keep the original Host object.
        assert view.hosts.get(2) is catalog.hosts.get(2)
        view.set_foreign_allocation(None)
        assert view.hosts.get(0).cpu_capacity == 8.0


class TestRegistry:
    def test_federated_is_registered(self):
        assert "federated" in available_planners()

    @pytest.mark.parametrize("inner", ["sqpr", "heuristic", "soda"])
    def test_parameterised_creation(self, inner):
        catalog = make_federated_catalog()
        planner = create_planner(
            f"federated:{inner}", catalog, config=PlannerConfig(time_limit=0.3)
        )
        assert isinstance(planner, FederatedPlanner)
        assert planner.name == f"federated:{inner}"
        assert planner.inner_name == inner

    def test_bare_federated_defaults_to_sqpr(self):
        planner = create_planner("federated", make_federated_catalog())
        assert planner.inner_name == "sqpr"
        assert planner.name == "federated"

    def test_unknown_inner_raises(self):
        with pytest.raises(PlanningError):
            create_planner("federated:nope", make_federated_catalog())

    def test_allocationless_inner_raises(self):
        with pytest.raises(PlanningError):
            create_planner("federated:optimistic", make_federated_catalog())

    def test_nesting_raises(self):
        with pytest.raises(PlanningError):
            create_planner("federated:federated", make_federated_catalog())

    def test_non_parameterised_outer_raises_planning_error(self):
        with pytest.raises(PlanningError):
            create_planner("soda:sqpr", make_federated_catalog())


class TestRouting:
    def test_site_local_queries_go_to_their_shard(self):
        catalog = make_federated_catalog()
        planner = create_planner(
            "federated:heuristic", catalog, config=PlannerConfig()
        )
        site0 = stream_names_of_site(catalog, 0)
        site1 = stream_names_of_site(catalog, 1)
        out0 = planner.submit(query_over(*site0[:2]))
        out1 = planner.submit(query_over(*site1[:2]))
        assert out0.extras["site"] == 0
        assert out1.extras["site"] == 1
        cross = planner.submit(query_over(site0[0], site1[0]))
        assert cross.extras["site"] == "coordinator"

    def test_offline_sources_escalate_to_coordinator(self):
        catalog = make_federated_catalog()
        planner = create_planner("federated:heuristic", catalog)
        name = stream_names_of_site(catalog, 0)[0]
        stream = catalog.streams.get_by_name(name)
        query = catalog.register_query(query_over(name, stream_names_of_site(catalog, 0)[1]))
        assert planner.route(query) == 0
        for host in catalog.base_hosts_of(stream.stream_id):
            catalog.deactivate_host(host)
        assert planner.route(query) is None

    def test_multi_homed_stream_intersects_sites(self):
        catalog = make_federated_catalog()
        # Make b0 (site 0) also available at a site-1 host: a query over
        # {b0, b_site1} is then site-1-local.
        b0 = catalog.streams.get_by_name("b0")
        catalog.add_base_stream_location(b0.stream_id, 3)
        planner = create_planner("federated:heuristic", catalog)
        site1_name = stream_names_of_site(catalog, 1)[0]
        query = catalog.register_query(query_over("b0", site1_name))
        assert planner.route(query) == 1


class TestFederatedPlanning:
    def test_shard_allocations_merge_into_global_state(self):
        catalog = make_federated_catalog()
        planner = create_planner(
            "federated:sqpr", catalog, config=PlannerConfig(time_limit=None)
        )
        site0 = stream_names_of_site(catalog, 0)
        site1 = stream_names_of_site(catalog, 1)
        outcomes = [
            planner.submit(query_over(*site0[:2])),
            planner.submit(query_over(*site1[:2])),
            planner.submit(query_over(site0[0], site1[0])),
        ]
        assert all(o.admitted for o in outcomes)
        assert planner.allocation.validate() == []
        assert planner.active_queries == {0, 1, 2}
        # The cross-site query crossed the gateway; the site-local ones did
        # not (their placements stay inside their shard's hosts).
        assert planner.allocation.wan_usage() != {}
        for host, _op in planner.allocation.placements:
            assert catalog.is_host_active(host)

    def test_retire_routes_to_owner_and_is_idempotent(self):
        catalog = make_federated_catalog()
        planner = create_planner(
            "federated:sqpr", catalog, config=PlannerConfig(time_limit=None)
        )
        site0 = stream_names_of_site(catalog, 0)
        site1 = stream_names_of_site(catalog, 1)
        planner.submit(query_over(*site0[:2]))
        cross = planner.submit(query_over(site0[0], site1[0]))
        assert planner.retire(cross.query.query_id) is True
        assert planner.retire(cross.query.query_id) is False
        assert planner.allocation.wan_usage() == {}
        assert planner.allocation.validate() == []
        assert planner.active_queries == {0}
        assert planner.retire(12345) is False

    def test_each_shard_has_its_own_reuse_cache(self):
        catalog = make_federated_catalog()
        planner = create_planner(
            "federated:sqpr", catalog, config=PlannerConfig(time_limit=None)
        )
        caches = {
            id(shard._reuse_cache) for shard in planner._shards.values()
        }
        caches.add(id(planner._coordinator._reuse_cache))
        assert len(caches) == len(planner._shards) + 1
        site0 = stream_names_of_site(catalog, 0)
        planner.submit(query_over(*site0[:2]))
        stats = planner.reuse_stats
        assert stats["misses"] >= 1

    def test_coordinator_usage_blocks_shard_overcommit(self):
        """Resource soundness across the boundary: once cross-site queries
        consume a host's CPU, the owning shard sees the reduced capacity
        and declines placements that would jointly overload the host."""
        catalog = make_federated_catalog(
            hosts_per_site=1, cpu=2.5, streams_per_host=4
        )
        planner = create_planner(
            "federated:heuristic", catalog, config=PlannerConfig()
        )
        site0 = stream_names_of_site(catalog, 0)
        site1 = stream_names_of_site(catalog, 1)
        cross_admitted, local_admitted, local_rejected = 0, 0, 0
        for i in range(3):
            cross = planner.submit(query_over(site0[i], site1[i]))
            cross_admitted += bool(cross.admitted)
            local = planner.submit(query_over(site0[i], site0[i + 1]))
            local_admitted += bool(local.admitted)
            local_rejected += not local.admitted
            assert planner.allocation.validate() == [], (
                "shard overcommitted a host shared with the coordinator"
            )
        assert cross_admitted >= 1
        assert local_admitted >= 1
        # The single site-0 host fills up with coordinator placements the
        # shard itself never made; without the foreign-usage adjustment the
        # shard would keep admitting and the validations above would fail.
        assert local_rejected >= 1

    def test_foreign_usage_excludes_shard_owned_structures(self):
        """A cross-site plan may reuse shard-produced structures; the
        published foreign usage must exclude them (the shard already
        counts its own structures as background), so the capacity a shard
        sees equals what is actually free on its hosts."""
        catalog = make_federated_catalog()
        planner = create_planner(
            "federated:sqpr", catalog, config=PlannerConfig(time_limit=None)
        )
        site0 = stream_names_of_site(catalog, 0)
        site1 = stream_names_of_site(catalog, 1)
        local = planner.submit(query_over(*site0[:2]))
        cross = planner.submit(query_over(site0[0], site1[0]))
        assert local.admitted and cross.admitted
        for site, view in planner._views.items():
            own = planner._shards[site].allocation
            foreign = view.foreign_allocation
            if foreign is not None:
                assert not (set(foreign.placements) & set(own.placements))
                assert not (set(foreign.flows) & set(own.flows))
            for host in view.host_ids:
                true_free = catalog.hosts.get(
                    host
                ).cpu_capacity - planner.allocation.cpu_used(host)
                visible_free = view.hosts.get(host).cpu_capacity - own.cpu_used(
                    host
                )
                assert visible_free == pytest.approx(true_free, abs=1e-9)

    def test_external_assignment_reconciles_shards(self):
        """The harness/replanner path: assigning a garbage-collected
        allocation retires the missing queries from their owners."""
        catalog = make_federated_catalog()
        planner = create_planner(
            "federated:sqpr", catalog, config=PlannerConfig(time_limit=None)
        )
        site0 = stream_names_of_site(catalog, 0)
        site1 = stream_names_of_site(catalog, 1)
        keep = planner.submit(query_over(*site0[:2])).query.query_id
        drop = planner.submit(query_over(*site1[:2])).query.query_id
        survivor = planner.allocation.without_queries([drop])
        planner.allocation = survivor
        assert planner.active_queries == {keep}
        assert drop not in planner._shards[1].allocation.admitted_queries
        assert planner.allocation.validate() == []

    def test_host_join_to_existing_site_becomes_plannable(self):
        catalog = make_federated_catalog()
        planner = create_planner("federated:heuristic", catalog)
        joined = catalog.add_host(8.0, 400.0, name="late", site=0).host_id
        stream = catalog.add_base_stream("late_stream", 10.0, joined)
        planner.on_topology_change()
        assert joined in planner._views[0].site_hosts
        outcome = planner.submit(
            query_over("late_stream", stream_names_of_site(catalog, 0)[0])
        )
        assert outcome.admitted
        assert outcome.extras["site"] == 0
        assert planner.allocation.validate() == []

    def test_host_join_to_new_site_creates_a_shard(self):
        catalog = make_federated_catalog()
        planner = create_planner("federated:heuristic", catalog)
        h1 = catalog.add_host(8.0, 400.0, name="n1", site=2).host_id
        h2 = catalog.add_host(8.0, 400.0, name="n2", site=2).host_id
        catalog.add_base_stream("n_a", 10.0, h1)
        catalog.add_base_stream("n_b", 10.0, h2)
        # Even without an explicit on_topology_change(), submit materialises
        # the new shard on demand.
        outcome = planner.submit(query_over("n_a", "n_b"))
        assert outcome.admitted
        assert outcome.extras["site"] == 2
        assert 2 in planner._shards
        assert planner.allocation.validate() == []

    def test_external_assignment_with_foreign_queries_raises(self):
        """An assigned allocation may only remove queries; adopting queries
        this planner never planned has no owning shard and must fail loudly
        instead of silently dropping them."""
        catalog = make_federated_catalog()
        planner = create_planner(
            "federated:heuristic", catalog, config=PlannerConfig()
        )
        site0 = stream_names_of_site(catalog, 0)
        planner.submit(query_over(*site0[:2]))
        foreign = planner.allocation.copy()
        stranger = catalog.register_query(query_over(*site0[2:4]))
        foreign.admit_query(stranger.query_id)
        with pytest.raises(PlanningError):
            planner.allocation = foreign

    def test_reset_clears_all_shards(self):
        catalog = make_federated_catalog()
        planner = create_planner(
            "federated:sqpr", catalog, config=PlannerConfig(time_limit=None)
        )
        planner.submit(query_over(*stream_names_of_site(catalog, 0)[:2]))
        planner.reset()
        assert planner.num_submitted == 0
        assert planner.active_queries == frozenset()
        assert len(planner.allocation.placements) == 0
        for shard in planner._shards.values():
            assert len(shard.allocation.admitted_queries) == 0

    def test_duplicate_result_stream_is_free(self):
        catalog = make_federated_catalog()
        planner = create_planner(
            "federated:sqpr", catalog, config=PlannerConfig(time_limit=None)
        )
        site0 = stream_names_of_site(catalog, 0)
        first = planner.submit(query_over(*site0[:2]))
        second = planner.submit(query_over(*site0[:2]))
        assert first.admitted and second.admitted
        assert second.duplicate
        assert planner.retire(first.query.query_id)
        # The shared result stream must survive for the duplicate.
        assert planner.allocation.is_provided(first.query.result_stream)
        assert planner.retire(second.query.query_id)
        assert not planner.allocation.is_provided(first.query.result_stream)


class TestSingleSiteEquivalence:
    @pytest.mark.parametrize("inner", ["sqpr", "heuristic"])
    def test_single_site_matches_inner_planner_exactly(self, inner):
        catalog_a = make_federated_catalog(num_sites=1)
        catalog_b = make_federated_catalog(num_sites=1)
        federated = create_planner(
            f"federated:{inner}", catalog_a, config=PlannerConfig(time_limit=None)
        )
        plain = create_planner(
            inner, catalog_b, config=PlannerConfig(time_limit=None)
        )
        workload = [
            query_over("b0", "b1"),
            query_over("b1", "b2"),
            query_over("b0", "b1", "b2"),
            query_over("b3", "b4"),
        ]
        for item in workload:
            fed_outcome = federated.submit(item)
            plain_outcome = plain.submit(item)
            assert fed_outcome.admitted == plain_outcome.admitted
        assert federated.allocation.fingerprint() == plain.allocation.fingerprint()
